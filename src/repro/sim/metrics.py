"""Streaming metrics collected by simulation runs.

Closed-stream runs (single-user, multi-user) populate the response-time
and I/O counters; open-system runs additionally record *when* each query
arrived and was admitted, so queueing delay (arrival -> admission) is
separated from service time (admission -> completion).  Aggregates that
need at least one query raise a uniform ``ValueError("no queries were
executed")`` instead of leaking opaque builtin errors.

Every aggregate is maintained *online*: :meth:`SimulationResult.record`
folds one :class:`QueryMetrics` into constant-size accumulators, so a
run's memory footprint no longer grows with its query count.  The pieces
are

* :class:`ExactSum` — a Shewchuk exact-partials accumulator whose final
  value is the correctly rounded sum of everything ever added, in *any*
  insertion or merge order.  Because ``statistics.fmean(xs)`` is exactly
  ``math.fsum(xs) / len(xs)``, streaming means reproduce the old
  list-walking means bit for bit.
* :class:`PercentileSketch` — a deterministic mergeable percentile
  sketch that stores raw values while the population is at most
  ``exact_threshold`` (percentiles are then *exact*, identical to
  sorting the full list) and afterwards collapses to fixed
  exponent-aligned bins (``math.frexp``-indexed, so binning never
  depends on platform ``log`` rounding) with ≲1% relative error.
* per-stream rollups built incrementally while records are retained.

``SimulationResult`` itself has two *record retention* modes:
``"full"`` (the default — per-query :class:`QueryMetrics` records and
per-stream rollups are kept, exactly as before) and ``"bounded"``
(records are folded into the accumulators and dropped, so memory stays
O(1) in the query count; per-query records and per-stream rollups are
unavailable).  Aggregates are identical in both modes until the
percentile sketches pass their exactness threshold.

Results are mergeable: :meth:`SimulationResult.merge` combines two
results into a new one, and the operation is associative and
shard-order-invariant — every aggregate of the merged result is byte
identical no matter how the underlying record stream was split or in
which order the pieces were merged.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field

#: Record-retention modes for :class:`SimulationResult`.
RETENTION_FULL = "full"
RETENTION_BOUNDED = "bounded"
RETENTION_MODES = (RETENTION_FULL, RETENTION_BOUNDED)

#: Default population size up to which percentile sketches stay exact.
#: Every pre-existing scenario runs far fewer queries per point, so
#: their percentiles keep coming from the full sorted sample.
PERCENTILE_EXACT_THRESHOLD = 4096

#: Sub-bins per power-of-two octave once a sketch has collapsed.  A
#: power of two, so bin boundaries are exact dyadic rationals: relative
#: bin width is 1/64 ≈ 1.6%.
_SKETCH_SUBBINS = 64


def percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile of ``values`` (``p`` in 0..100).

    Deterministic and dependency-free (numpy's default 'linear' method):
    the rank ``p/100 * (n-1)`` is interpolated between the two nearest
    order statistics.
    """
    if not values:
        raise ValueError("no values to take a percentile of")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be between 0 and 100")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _grow_partials(partials: list[float], value: float) -> None:
    """Fold ``value`` into a Shewchuk non-overlapping partials list.

    After the call the partials represent the *exact* real sum of
    everything folded in so far (no rounding has happened yet), which is
    what makes the accumulator order- and grouping-invariant.
    """
    x = value
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]


class ExactSum:
    """Streaming float sum, exact until the final rounding.

    ``value`` equals ``math.fsum`` of every float ever added — bit for
    bit, in any insertion order — because the internal partials always
    represent the exact (unrounded) running sum.  Merging two
    accumulators folds one's partials into the other, which preserves
    exactness, so merge is associative and order-invariant too.
    """

    __slots__ = ("partials",)

    def __init__(self, partials: list[float] | None = None):
        self.partials: list[float] = list(partials) if partials else []

    def add(self, value: float) -> None:
        _grow_partials(self.partials, value)

    def merge(self, other: "ExactSum") -> None:
        for partial in other.partials:
            _grow_partials(self.partials, partial)

    def copy(self) -> "ExactSum":
        return ExactSum(self.partials)

    @property
    def value(self) -> float:
        return math.fsum(self.partials)


class PercentileSketch:
    """Deterministic mergeable percentile sketch, exact below a threshold.

    While the population is at most ``exact_threshold`` the sketch keeps
    the raw values and :meth:`percentile` is *exact* — identical to
    sorting the full sample.  Past the threshold the values collapse
    into fixed exponent-aligned bins: a positive value ``v`` with
    ``frexp(v) = (m, e)`` lands in sub-bin ``int((2m - 1) * 64)`` of
    octave ``e`` (zero gets a dedicated bin), so bin boundaries are
    exact dyadic rationals independent of platform ``log`` rounding and
    the relative within-bin error is at most 1/64.  Because the binning
    of a value never depends on the sketch's state, the collapsed form
    is a pure function of the recorded multiset — which makes merging
    associative and order-invariant by construction.

    Only non-negative finite values are accepted (response times and
    queueing delays are).
    """

    __slots__ = ("exact_threshold", "count", "_values", "_zero", "_bins",
                 "_min", "_max")

    def __init__(self, exact_threshold: int = PERCENTILE_EXACT_THRESHOLD):
        if exact_threshold < 1:
            raise ValueError("exact_threshold must be >= 1")
        self.exact_threshold = exact_threshold
        self.count = 0
        self._values: list[float] | None = []
        self._zero = 0
        self._bins: dict[int, int] = {}
        self._min = math.inf
        self._max = -math.inf

    @property
    def is_exact(self) -> bool:
        """Whether percentiles still come from the full raw sample."""
        return self._values is not None

    @property
    def minimum(self) -> float:
        if not self.count:
            raise ValueError("no values to take a percentile of")
        return self._min

    @property
    def maximum(self) -> float:
        if not self.count:
            raise ValueError("no values to take a percentile of")
        return self._max

    @staticmethod
    def _bin_index(value: float) -> int:
        # frexp gives value = m * 2**e with m in [0.5, 1); both the
        # scaling and the subtraction below are exact, so the sub-bin
        # is a pure function of the value's bits.
        m, e = math.frexp(value)
        sub = int((m * 2.0 - 1.0) * _SKETCH_SUBBINS)
        return e * _SKETCH_SUBBINS + sub

    @staticmethod
    def _bin_bounds(index: int) -> tuple[float, float]:
        e, sub = divmod(index, _SKETCH_SUBBINS)
        lower = math.ldexp(0.5 + sub / (2 * _SKETCH_SUBBINS), e)
        upper = math.ldexp(0.5 + (sub + 1) / (2 * _SKETCH_SUBBINS), e)
        return lower, upper

    def _bin(self, value: float) -> None:
        if value == 0.0:
            self._zero += 1
        else:
            index = self._bin_index(value)
            self._bins[index] = self._bins.get(index, 0) + 1

    def _collapse(self) -> None:
        values, self._values = self._values, None
        for value in values:
            self._bin(value)

    def record(self, value: float) -> None:
        if not (value >= 0.0) or math.isinf(value):
            raise ValueError(
                "percentile sketch values must be finite and non-negative"
            )
        self.count += 1
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._values is not None:
            self._values.append(value)
            if len(self._values) > self.exact_threshold:
                self._collapse()
        else:
            self._bin(value)

    def merge(self, other: "PercentileSketch") -> None:
        """Fold ``other`` into this sketch (associative, order-invariant)."""
        if self.exact_threshold != other.exact_threshold:
            raise ValueError(
                "cannot merge percentile sketches with different "
                "exactness thresholds"
            )
        self.count += other.count
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)
        if (
            self._values is not None
            and other._values is not None
            and self.count <= self.exact_threshold
        ):
            self._values.extend(other._values)
            return
        if self._values is not None:
            self._collapse()
        if other._values is not None:
            for value in other._values:
                self._bin(value)
        else:
            self._zero += other._zero
            for index, n in other._bins.items():
                self._bins[index] = self._bins.get(index, 0) + n

    def copy(self) -> "PercentileSketch":
        clone = PercentileSketch(self.exact_threshold)
        clone.count = self.count
        clone._values = None if self._values is None else list(self._values)
        clone._zero = self._zero
        clone._bins = dict(self._bins)
        clone._min = self._min
        clone._max = self._max
        return clone

    def _order_statistic(self, k: int, ordered_bins: list[int]) -> float:
        """Estimated k-th smallest recorded value (binned mode).

        The k-th occupant's bin is located by cumulative counts; its
        position within the bin is taken as the occupant's midpoint, so
        the estimate sits strictly inside the bin holding the true
        order statistic (error at most one bin width).
        """
        if k < self._zero:
            return 0.0
        cumulative = self._zero
        for index in ordered_bins:
            occupants = self._bins[index]
            if k < cumulative + occupants:
                lower, upper = self._bin_bounds(index)
                fraction = (k - cumulative + 0.5) / occupants
                return lower + (upper - lower) * fraction
            # repro-lint: disable=DET-FLOAT -- integer bin occupancies;
            # integer addition is exact in any order.
            cumulative += occupants
        return self._max

    def percentile(self, p: float) -> float:
        if not self.count:
            raise ValueError("no values to take a percentile of")
        if not 0 <= p <= 100:
            raise ValueError("percentile must be between 0 and 100")
        if self._values is not None:
            return percentile(self._values, p)
        rank = (p / 100.0) * (self.count - 1)
        if rank <= 0:
            return self._min
        if rank >= self.count - 1:
            return self._max
        # Mirror the exact path: interpolate between the two bracketing
        # order statistics, each estimated within its own bin, so bin
        # gaps never inflate the error past one bin width.
        ordered_bins = sorted(self._bins)
        low = int(rank)
        fraction = rank - low
        estimate = self._order_statistic(low, ordered_bins)
        if fraction:
            above = self._order_statistic(low + 1, ordered_bins)
            estimate += (above - estimate) * fraction
        # The exact minimum/maximum are tracked outside the bins; clamp
        # so estimates never escape the observed range.
        return min(max(estimate, self._min), self._max)


@dataclass(frozen=True)
class QueryMetrics:
    """Measurements for one executed query."""

    name: str
    response_time: float
    subqueries: int
    fact_io_ops: int
    fact_pages: int
    bitmap_io_ops: int
    bitmap_pages: int
    coordinator_node: int
    #: Session/stream the query belongs to (0 for single-user runs).
    stream: int = 0
    #: Open-system accounting; all zero for closed-stream runs, where
    #: queries start executing the moment they are issued.
    arrived_at: float = 0.0
    admitted_at: float = 0.0
    queue_delay: float = 0.0

    @property
    def total_pages(self) -> int:
        return self.fact_pages + self.bitmap_pages

    @property
    def total_delay(self) -> float:
        """Sojourn time: queueing delay plus service (response) time."""
        return self.queue_delay + self.response_time


@dataclass(frozen=True)
class StreamStats:
    """Per-stream (per-session) aggregate of an open/multi-user run."""

    stream: int
    query_count: int
    avg_response_time: float
    avg_queue_delay: float


class _StreamAccumulator:
    """Incremental per-stream rollup (count + exact sums)."""

    __slots__ = ("count", "response", "queue")

    def __init__(self):
        self.count = 0
        self.response = ExactSum()
        self.queue = ExactSum()

    def merge(self, other: "_StreamAccumulator") -> None:
        self.count += other.count
        self.response.merge(other.response)
        self.queue.merge(other.queue)

    def copy(self) -> "_StreamAccumulator":
        clone = _StreamAccumulator()
        clone.count = self.count
        clone.response = self.response.copy()
        clone.queue = self.queue.copy()
        return clone


class SimulationResult:
    """Aggregate outcome of one simulation run (a query stream).

    Aggregates are maintained online by :meth:`record` — feeding one
    :class:`QueryMetrics` at a time — so they cost O(1) memory per
    query.  ``retention`` controls whether the raw records are *also*
    kept on :attr:`queries`:

    * ``"full"`` (default): records and per-stream rollups are
      retained, exactly like the historical list-backed result.
    * ``"bounded"``: records are dropped after folding; memory stays
      constant in the query count.  :attr:`queries` stays empty and
      :meth:`per_stream` is unavailable.

    :meth:`record` is the only supported write path for query metrics —
    appending to :attr:`queries` directly would bypass the accumulators.
    """

    def __init__(
        self,
        queries: list[QueryMetrics] | None = None,
        elapsed: float = 0.0,
        disk_busy: list[float] | None = None,
        disk_seek: list[float] | None = None,
        cpu_busy: list[float] | None = None,
        buffer_hits: int = 0,
        buffer_misses: int = 0,
        event_count: int = 0,
        peak_mpl: int = 0,
        peak_queue_length: int = 0,
        queued_arrivals: int = 0,
        retention: str = RETENTION_FULL,
        exact_percentile_threshold: int = PERCENTILE_EXACT_THRESHOLD,
    ):
        if retention not in RETENTION_MODES:
            raise ValueError(
                f"retention must be one of {RETENTION_MODES}, "
                f"got {retention!r}"
            )
        self.retention = retention
        self.elapsed = elapsed
        self.buffer_hits = buffer_hits
        self.buffer_misses = buffer_misses
        self.event_count = event_count
        #: Open-system admission statistics (zero for closed-stream runs).
        self.peak_mpl = peak_mpl
        self.peak_queue_length = peak_queue_length
        self.queued_arrivals = queued_arrivals

        #: Raw records; populated only under full retention.
        self.queries: list[QueryMetrics] = []

        self._count = 0
        self._total_pages = 0
        self._response_sum = ExactSum()
        self._queue_sum = ExactSum()
        self._total_delay_sum = ExactSum()
        self._response_max = -math.inf
        self._queue_max = -math.inf
        self._response_sketch = PercentileSketch(exact_percentile_threshold)
        self._queue_sketch = PercentileSketch(exact_percentile_threshold)
        self._total_delay_sketch = PercentileSketch(exact_percentile_threshold)
        self._streams: dict[int, _StreamAccumulator] = {}

        # Device accounting: each entry is an exact partials list so
        # merged results stay byte-identical in any merge order.  The
        # plain-float views are exposed via the properties below.
        self._disk_busy: list[list[float]] = []
        self._disk_seek: list[list[float]] = []
        self._cpu_busy: list[list[float]] = []
        if disk_busy is not None:
            self.disk_busy = disk_busy
        if disk_seek is not None:
            self.disk_seek = disk_seek
        if cpu_busy is not None:
            self.cpu_busy = cpu_busy

        for query in queries or []:
            self.record(query)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimulationResult(queries={self._count}, "
            f"retention={self.retention!r}, elapsed={self.elapsed!r})"
        )

    # -- device accounting -------------------------------------------------

    @staticmethod
    def _device_view(partials: list[list[float]]) -> list[float]:
        return [math.fsum(entry) for entry in partials]

    @staticmethod
    def _device_store(values: list[float]) -> list[list[float]]:
        return [[float(value)] if value else [] for value in values]

    @property
    def disk_busy(self) -> list[float]:
        return self._device_view(self._disk_busy)

    @disk_busy.setter
    def disk_busy(self, values: list[float]) -> None:
        self._disk_busy = self._device_store(values)

    @property
    def disk_seek(self) -> list[float]:
        return self._device_view(self._disk_seek)

    @disk_seek.setter
    def disk_seek(self, values: list[float]) -> None:
        self._disk_seek = self._device_store(values)

    @property
    def cpu_busy(self) -> list[float]:
        return self._device_view(self._cpu_busy)

    @cpu_busy.setter
    def cpu_busy(self, values: list[float]) -> None:
        self._cpu_busy = self._device_store(values)

    # -- recording ---------------------------------------------------------

    def record(self, query: QueryMetrics) -> None:
        """Fold one query's measurements into the streaming aggregates."""
        self._count += 1
        self._total_pages += query.total_pages
        self._response_sum.add(query.response_time)
        self._queue_sum.add(query.queue_delay)
        self._total_delay_sum.add(query.total_delay)
        if query.response_time > self._response_max:
            self._response_max = query.response_time
        if query.queue_delay > self._queue_max:
            self._queue_max = query.queue_delay
        self._response_sketch.record(query.response_time)
        self._queue_sketch.record(query.queue_delay)
        self._total_delay_sketch.record(query.total_delay)
        if self.retention == RETENTION_FULL:
            self.queries.append(query)
            rollup = self._streams.get(query.stream)
            if rollup is None:
                rollup = self._streams[query.stream] = _StreamAccumulator()
            rollup.count += 1
            rollup.response.add(query.response_time)
            rollup.queue.add(query.queue_delay)

    # -- aggregates --------------------------------------------------------

    def _require_queries(self) -> None:
        if not self._count:
            raise ValueError("no queries were executed")

    @property
    def query_count(self) -> int:
        """Queries folded into the aggregates (regardless of retention)."""
        return self._count

    @property
    def records_retained(self) -> int:
        """Raw records currently held (0 under bounded retention)."""
        return len(self.queries)

    @property
    def exact_percentile_threshold(self) -> int:
        return self._response_sketch.exact_threshold

    @property
    def percentile_source(self) -> str:
        """``"exact"`` while sketches hold raw samples, else ``"sketch"``."""
        return "exact" if self._response_sketch.is_exact else "sketch"

    @property
    def avg_response_time(self) -> float:
        self._require_queries()
        return self._response_sum.value / self._count

    @property
    def max_response_time(self) -> float:
        self._require_queries()
        return self._response_max

    @property
    def avg_queue_delay(self) -> float:
        self._require_queries()
        return self._queue_sum.value / self._count

    @property
    def max_queue_delay(self) -> float:
        self._require_queries()
        return self._queue_max

    @property
    def avg_total_delay(self) -> float:
        self._require_queries()
        return self._total_delay_sum.value / self._count

    def response_time_percentile(self, p: float) -> float:
        self._require_queries()
        return self._response_sketch.percentile(p)

    def queue_delay_percentile(self, p: float) -> float:
        self._require_queries()
        return self._queue_sketch.percentile(p)

    def total_delay_percentile(self, p: float) -> float:
        self._require_queries()
        return self._total_delay_sketch.percentile(p)

    def per_stream(self) -> dict[int, StreamStats]:
        """Per-stream aggregates, keyed by stream id (sorted).

        Available only under full retention: bounded retention drops
        the per-stream rollup along with the records, because open
        workloads have one stream per session and the rollup would
        grow O(sessions).
        """
        self._require_queries()
        if self.retention != RETENTION_FULL:
            raise ValueError(
                "per-stream rollups are not retained in bounded mode"
            )
        return {
            stream: StreamStats(
                stream=stream,
                query_count=rollup.count,
                avg_response_time=rollup.response.value / rollup.count,
                avg_queue_delay=rollup.queue.value / rollup.count,
            )
            for stream, rollup in sorted(self._streams.items())
        }

    @property
    def throughput_qps(self) -> float:
        """Completed queries per simulated second."""
        self._require_queries()
        if self.elapsed <= 0:
            raise ValueError("no simulated time elapsed")
        return self._count / self.elapsed

    @property
    def avg_disk_utilization(self) -> float:
        """Mean disk busy fraction; 0.0 for a diskless configuration."""
        if self.elapsed <= 0:
            raise ValueError("no simulated time elapsed")
        if not self._disk_busy:
            return 0.0
        return statistics.fmean(self.disk_busy) / self.elapsed

    @property
    def avg_cpu_utilization(self) -> float:
        """Mean CPU busy fraction; 0.0 for a CPU-less configuration."""
        if self.elapsed <= 0:
            raise ValueError("no simulated time elapsed")
        if not self._cpu_busy:
            return 0.0
        return statistics.fmean(self.cpu_busy) / self.elapsed

    @property
    def total_pages(self) -> int:
        return self._total_pages

    def speedup_against(self, baseline: "SimulationResult") -> float:
        """Baseline average response time divided by this run's."""
        self._require_queries()
        baseline._require_queries()
        baseline_avg = baseline.avg_response_time
        if baseline_avg <= 0:
            raise ValueError("baseline average response time is zero")
        return baseline_avg / self.avg_response_time

    # -- merging -----------------------------------------------------------

    @staticmethod
    def _merge_device(
        left: list[list[float]], right: list[list[float]]
    ) -> list[list[float]]:
        merged = [list(entry) for entry in left]
        if len(right) > len(merged):
            merged.extend([] for _ in range(len(right) - len(merged)))
        for i, entry in enumerate(right):
            for partial in entry:
                _grow_partials(merged[i], partial)
        return merged

    def merge(self, other: "SimulationResult") -> "SimulationResult":
        """Combine two results into a new one (non-mutating).

        The operation is associative and order-invariant: every
        aggregate of the merged result is byte-identical no matter how
        the record stream was split across results or in which order
        the pieces are merged.  Counts and page/buffer/event totals
        add; response/delay sums combine exactly; maxima and peaks take
        the maximum; ``elapsed`` is the maximum (the shards describe
        one shared simulated timeline); device busy times combine
        exactly entry by entry.  The merged result keeps full retention
        (concatenated records and combined rollups) only when *both*
        inputs do, otherwise it is bounded.

        Under full retention :attr:`queries` concatenates ``self``'s
        records before ``other``'s — the record *order* follows the
        merge order even though every aggregate is invariant to it.
        """
        if self.exact_percentile_threshold != other.exact_percentile_threshold:
            raise ValueError(
                "cannot merge results with different percentile "
                "exactness thresholds"
            )
        retention = (
            RETENTION_FULL
            if self.retention == other.retention == RETENTION_FULL
            else RETENTION_BOUNDED
        )
        merged = SimulationResult(
            elapsed=max(self.elapsed, other.elapsed),
            buffer_hits=self.buffer_hits + other.buffer_hits,
            buffer_misses=self.buffer_misses + other.buffer_misses,
            event_count=self.event_count + other.event_count,
            peak_mpl=max(self.peak_mpl, other.peak_mpl),
            peak_queue_length=max(
                self.peak_queue_length, other.peak_queue_length
            ),
            queued_arrivals=self.queued_arrivals + other.queued_arrivals,
            retention=retention,
            exact_percentile_threshold=self.exact_percentile_threshold,
        )
        merged._count = self._count + other._count
        merged._total_pages = self._total_pages + other._total_pages
        for name in ("_response_sum", "_queue_sum", "_total_delay_sum"):
            combined = getattr(self, name).copy()
            combined.merge(getattr(other, name))
            setattr(merged, name, combined)
        merged._response_max = max(self._response_max, other._response_max)
        merged._queue_max = max(self._queue_max, other._queue_max)
        for name in ("_response_sketch", "_queue_sketch",
                     "_total_delay_sketch"):
            combined = getattr(self, name).copy()
            combined.merge(getattr(other, name))
            setattr(merged, name, combined)
        merged._disk_busy = self._merge_device(self._disk_busy,
                                               other._disk_busy)
        merged._disk_seek = self._merge_device(self._disk_seek,
                                               other._disk_seek)
        merged._cpu_busy = self._merge_device(self._cpu_busy,
                                              other._cpu_busy)
        if retention == RETENTION_FULL:
            merged.queries = self.queries + other.queries
            streams = {k: v.copy() for k, v in self._streams.items()}
            for stream, rollup in other._streams.items():
                mine = streams.get(stream)
                if mine is None:
                    streams[stream] = rollup.copy()
                else:
                    mine.merge(rollup)
            merged._streams = streams
        return merged

    @classmethod
    def merged(cls, results: list["SimulationResult"]) -> "SimulationResult":
        """Fold a sequence of results left to right (empty -> empty).

        The fold seeds its empty accumulator with the first result's
        percentile threshold, so a uniformly non-default-threshold
        sequence folds cleanly (mixed thresholds still refuse to merge).
        """
        results = list(results)
        threshold = (
            results[0].exact_percentile_threshold
            if results else PERCENTILE_EXACT_THRESHOLD
        )
        combined = cls(exact_percentile_threshold=threshold)
        for result in results:
            combined = combined.merge(result)
        return combined
