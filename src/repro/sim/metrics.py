"""Metrics collected by simulation runs."""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field


@dataclass(frozen=True)
class QueryMetrics:
    """Measurements for one executed query."""

    name: str
    response_time: float
    subqueries: int
    fact_io_ops: int
    fact_pages: int
    bitmap_io_ops: int
    bitmap_pages: int
    coordinator_node: int

    @property
    def total_pages(self) -> int:
        return self.fact_pages + self.bitmap_pages


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run (a query stream)."""

    queries: list[QueryMetrics] = field(default_factory=list)
    elapsed: float = 0.0
    disk_busy: list[float] = field(default_factory=list)
    disk_seek: list[float] = field(default_factory=list)
    cpu_busy: list[float] = field(default_factory=list)
    buffer_hits: int = 0
    buffer_misses: int = 0
    event_count: int = 0

    @property
    def query_count(self) -> int:
        return len(self.queries)

    @property
    def avg_response_time(self) -> float:
        if not self.queries:
            raise ValueError("no queries were executed")
        return statistics.fmean(q.response_time for q in self.queries)

    @property
    def max_response_time(self) -> float:
        return max(q.response_time for q in self.queries)

    @property
    def avg_disk_utilization(self) -> float:
        if self.elapsed <= 0 or not self.disk_busy:
            return 0.0
        return statistics.fmean(self.disk_busy) / self.elapsed

    @property
    def avg_cpu_utilization(self) -> float:
        if self.elapsed <= 0 or not self.cpu_busy:
            return 0.0
        return statistics.fmean(self.cpu_busy) / self.elapsed

    @property
    def total_pages(self) -> int:
        return sum(q.total_pages for q in self.queries)

    def speedup_against(self, baseline: "SimulationResult") -> float:
        """Baseline average response time divided by this run's."""
        return baseline.avg_response_time / self.avg_response_time
