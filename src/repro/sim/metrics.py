"""Metrics collected by simulation runs.

Closed-stream runs (single-user, multi-user) populate the response-time
and I/O counters; open-system runs additionally record *when* each query
arrived and was admitted, so queueing delay (arrival -> admission) is
separated from service time (admission -> completion).  Aggregates that
need at least one query raise a uniform ``ValueError("no queries were
executed")`` instead of leaking opaque builtin errors.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field


def percentile(values: list[float], p: float) -> float:
    """Linear-interpolated percentile of ``values`` (``p`` in 0..100).

    Deterministic and dependency-free (numpy's default 'linear' method):
    the rank ``p/100 * (n-1)`` is interpolated between the two nearest
    order statistics.
    """
    if not values:
        raise ValueError("no values to take a percentile of")
    if not 0 <= p <= 100:
        raise ValueError("percentile must be between 0 and 100")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (p / 100.0) * (len(ordered) - 1)
    low = int(rank)
    high = min(low + 1, len(ordered) - 1)
    fraction = rank - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


@dataclass(frozen=True)
class QueryMetrics:
    """Measurements for one executed query."""

    name: str
    response_time: float
    subqueries: int
    fact_io_ops: int
    fact_pages: int
    bitmap_io_ops: int
    bitmap_pages: int
    coordinator_node: int
    #: Session/stream the query belongs to (0 for single-user runs).
    stream: int = 0
    #: Open-system accounting; all zero for closed-stream runs, where
    #: queries start executing the moment they are issued.
    arrived_at: float = 0.0
    admitted_at: float = 0.0
    queue_delay: float = 0.0

    @property
    def total_pages(self) -> int:
        return self.fact_pages + self.bitmap_pages

    @property
    def total_delay(self) -> float:
        """Sojourn time: queueing delay plus service (response) time."""
        return self.queue_delay + self.response_time


@dataclass(frozen=True)
class StreamStats:
    """Per-stream (per-session) aggregate of an open/multi-user run."""

    stream: int
    query_count: int
    avg_response_time: float
    avg_queue_delay: float


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run (a query stream)."""

    queries: list[QueryMetrics] = field(default_factory=list)
    elapsed: float = 0.0
    disk_busy: list[float] = field(default_factory=list)
    disk_seek: list[float] = field(default_factory=list)
    cpu_busy: list[float] = field(default_factory=list)
    buffer_hits: int = 0
    buffer_misses: int = 0
    event_count: int = 0
    #: Open-system admission statistics (zero for closed-stream runs).
    peak_mpl: int = 0
    peak_queue_length: int = 0
    queued_arrivals: int = 0

    def _require_queries(self) -> None:
        if not self.queries:
            raise ValueError("no queries were executed")

    @property
    def query_count(self) -> int:
        return len(self.queries)

    @property
    def avg_response_time(self) -> float:
        self._require_queries()
        return statistics.fmean(q.response_time for q in self.queries)

    @property
    def max_response_time(self) -> float:
        self._require_queries()
        return max(q.response_time for q in self.queries)

    @property
    def avg_queue_delay(self) -> float:
        self._require_queries()
        return statistics.fmean(q.queue_delay for q in self.queries)

    @property
    def max_queue_delay(self) -> float:
        self._require_queries()
        return max(q.queue_delay for q in self.queries)

    @property
    def avg_total_delay(self) -> float:
        self._require_queries()
        return statistics.fmean(q.total_delay for q in self.queries)

    def response_time_percentile(self, p: float) -> float:
        self._require_queries()
        return percentile([q.response_time for q in self.queries], p)

    def queue_delay_percentile(self, p: float) -> float:
        self._require_queries()
        return percentile([q.queue_delay for q in self.queries], p)

    def total_delay_percentile(self, p: float) -> float:
        self._require_queries()
        return percentile([q.total_delay for q in self.queries], p)

    def per_stream(self) -> dict[int, StreamStats]:
        """Per-stream aggregates, keyed by stream id (sorted)."""
        self._require_queries()
        grouped: dict[int, list[QueryMetrics]] = {}
        for query in self.queries:
            grouped.setdefault(query.stream, []).append(query)
        return {
            stream: StreamStats(
                stream=stream,
                query_count=len(members),
                avg_response_time=statistics.fmean(
                    q.response_time for q in members
                ),
                avg_queue_delay=statistics.fmean(
                    q.queue_delay for q in members
                ),
            )
            for stream, members in sorted(grouped.items())
        }

    @property
    def throughput_qps(self) -> float:
        """Completed queries per simulated second."""
        self._require_queries()
        if self.elapsed <= 0:
            raise ValueError("no simulated time elapsed")
        return len(self.queries) / self.elapsed

    @property
    def avg_disk_utilization(self) -> float:
        if self.elapsed <= 0 or not self.disk_busy:
            return 0.0
        return statistics.fmean(self.disk_busy) / self.elapsed

    @property
    def avg_cpu_utilization(self) -> float:
        if self.elapsed <= 0 or not self.cpu_busy:
            return 0.0
        return statistics.fmean(self.cpu_busy) / self.elapsed

    @property
    def total_pages(self) -> int:
        return sum(q.total_pages for q in self.queries)

    def speedup_against(self, baseline: "SimulationResult") -> float:
        """Baseline average response time divided by this run's."""
        self._require_queries()
        baseline._require_queries()
        return baseline.avg_response_time / self.avg_response_time
