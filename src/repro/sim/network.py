"""Idealised contention-free network (Section 5).

"An idealized contention-free network model is employed with
communication delays proportional to message sizes, so as not to bias
simulation results due to a specific choice of a network topology."
Transfer delay is therefore a pure timeout; the CPU costs of sending and
receiving (Table 4: 1,000 instructions + 1 per byte on each side) are
charged by the caller on the respective nodes.
"""

from __future__ import annotations

from repro.sim.config import CpuCosts, NetworkParameters
from repro.sim.engine import Environment, Event


class Network:
    """Contention-free interconnect between the processing nodes."""

    def __init__(self, env: Environment, params: NetworkParameters):
        self.env = env
        self.params = params
        self.messages_sent = 0
        self.bytes_sent = 0

    def transfer_seconds(self, n_bytes: int) -> float:
        """Wire time for one message."""
        if n_bytes < 0:
            raise ValueError("n_bytes must be non-negative")
        return n_bytes * 8.0 / self.params.bandwidth_bits_per_s

    def transfer(self, n_bytes: int, seconds: float | None = None) -> Event:
        """An event triggering after the wire delay of one message.

        ``seconds`` may carry the precomputed :meth:`transfer_seconds`
        of ``n_bytes`` — hot callers sending fixed-size control messages
        price the delay once instead of per message.
        """
        self.messages_sent += 1
        self.bytes_sent += n_bytes
        if seconds is None:
            seconds = self.transfer_seconds(n_bytes)
        return self.env.timeout(seconds)


def send_instructions(costs: CpuCosts, n_bytes: int) -> int:
    """Sender-side CPU cost of one message (Table 4)."""
    return costs.send_message_base + costs.per_message_byte * n_bytes


def receive_instructions(costs: CpuCosts, n_bytes: int) -> int:
    """Receiver-side CPU cost of one message (Table 4)."""
    return costs.receive_message_base + costs.per_message_byte * n_bytes
