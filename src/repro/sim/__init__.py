"""SIMPAD-equivalent simulator of a Shared Disk PDBS (Section 5).

The original SIMPAD is C++ on the commercial CSIM library; this package
rebuilds the parts the paper describes and parameterises (Table 4):

* a process-based discrete-event engine (:mod:`repro.sim.engine`) and
  its deliberately naive twin used only by the equivalence harness
  (:mod:`repro.sim.reference`),
* disks as explicit FIFO servers with track-position-dependent seek
  times (:mod:`repro.sim.disk`),
* processing nodes as FIFO CPU servers with per-step instruction costs
  (:mod:`repro.sim.cpu`),
* an idealised contention-free network with size-proportional delays
  (:mod:`repro.sim.network`),
* an LRU buffer manager with prefetch and separate pools for tables and
  indices (:mod:`repro.sim.buffer`),
* the coordinator/subquery scheduling of Section 5 with at most ``t``
  concurrent tasks per node (:mod:`repro.sim.scheduler`),
* MPL-capped FIFO admission control for open-system workloads
  (:mod:`repro.sim.admission`), and
* the top-level :class:`ParallelWarehouseSimulator` tying the star
  schema, fragmentation, allocation and workload together.
"""

from repro.sim.admission import AdmissionController
from repro.sim.config import (
    HardwareParameters,
    SimulationParameters,
    WorkloadParameters,
)
from repro.sim.engine import AllOf, Environment, Event
from repro.sim.reference import ReferenceEnvironment
from repro.sim.metrics import (
    ExactSum,
    PercentileSketch,
    QueryMetrics,
    RETENTION_BOUNDED,
    RETENTION_FULL,
    SimulationResult,
    StreamStats,
    percentile,
)
from repro.sim.simulator import ParallelWarehouseSimulator

__all__ = [
    "AdmissionController",
    "Environment",
    "Event",
    "AllOf",
    "ReferenceEnvironment",
    "HardwareParameters",
    "SimulationParameters",
    "WorkloadParameters",
    "ExactSum",
    "PercentileSketch",
    "QueryMetrics",
    "RETENTION_BOUNDED",
    "RETENTION_FULL",
    "SimulationResult",
    "StreamStats",
    "percentile",
    "ParallelWarehouseSimulator",
]
