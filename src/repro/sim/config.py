"""Simulation parameters (Table 4 of the paper).

Every default below is taken verbatim from Table 4; the handful of
implementation knobs that the paper does not parameterise (disk capacity
behind the track model, I/O coalescing for event-count control) are
grouped at the end and documented.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class DiskParameters:
    """Disk device timing (Table 4, left column)."""

    avg_seek_ms: float = 10.0
    settle_controller_ms: float = 3.0
    per_page_ms: float = 1.0
    #: Pages a disk can hold; defines the track span behind the
    #: position-dependent seek model (not in Table 4; 4 GB of 4 KB pages).
    capacity_pages: int = 1_048_576
    #: Pages per track for the seek-distance model.
    pages_per_track: int = 64


@dataclass(frozen=True)
class CpuCosts:
    """Instruction counts per operation (Table 4, middle column)."""

    initiate_query: int = 50_000
    terminate_query: int = 10_000
    initiate_subquery: int = 10_000
    terminate_subquery: int = 10_000
    read_page: int = 3_000
    process_bitmap_page: int = 1_500
    extract_table_row: int = 100
    aggregate_table_row: int = 100
    send_message_base: int = 1_000
    receive_message_base: int = 1_000
    #: Instructions per message byte on top of the base cost.
    per_message_byte: int = 1


@dataclass(frozen=True)
class NetworkParameters:
    """Idealised contention-free network (Table 4, right column)."""

    bandwidth_bits_per_s: float = 100e6
    small_message_bytes: int = 128
    large_message_bytes: int = 4096


@dataclass(frozen=True)
class BufferParameters:
    """Buffer manager settings (Table 4, right column)."""

    page_size: int = 4096
    fact_buffer_pages: int = 1_000
    bitmap_buffer_pages: int = 5_000
    prefetch_fact_pages: int = 8
    prefetch_bitmap_pages: int = 5
    #: Table 6 marks the bitmap granule "(var.)": it shrinks to the
    #: bitmap-fragment size when fragments are smaller than the granule.
    adaptive_bitmap_prefetch: bool = True


@dataclass(frozen=True)
class HardwareParameters:
    """Machine configuration: varied per experiment (Tables 4 and 5)."""

    n_disks: int = 100
    n_nodes: int = 20
    cpu_mips: float = 50.0
    #: Maximum concurrent subqueries per node ("t"); the coordinator
    #: node runs t-1 because coordination counts as one task.
    subqueries_per_node: int = 4


@dataclass(frozen=True)
class WorkloadParameters:
    """Open-system workload shape (beyond the paper's single-user mode).

    Section 7 defers multi-user mode to future work; these knobs define
    the arrival side of it.  ``arrival_process`` names one of the
    distributions in :mod:`repro.workload.arrivals`; ``max_mpl`` caps
    concurrent admissions (``None`` = no admission control);
    ``think_time_s`` is the mean exponential pause between consecutive
    queries of one session (closed/open hybrid mode; 0 = pure open).
    """

    arrival_process: str = "poisson"  # "poisson" | "fixed" | "bursty"
    arrival_rate_qps: float = 1.0
    burst_size: int = 4
    max_mpl: int | None = None
    think_time_s: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_process not in ("poisson", "fixed", "bursty"):
            raise ValueError(
                f"unknown arrival_process {self.arrival_process!r}"
            )
        if self.arrival_rate_qps <= 0:
            raise ValueError("arrival_rate_qps must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")
        if self.max_mpl is not None and self.max_mpl < 1:
            raise ValueError("max_mpl must be >= 1 (or None)")
        if self.think_time_s < 0:
            raise ValueError("think_time_s must be non-negative")


@dataclass(frozen=True)
class SimulationParameters:
    """Everything a simulation run needs besides schema and workload."""

    hardware: HardwareParameters = field(default_factory=HardwareParameters)
    disk: DiskParameters = field(default_factory=DiskParameters)
    cpu_costs: CpuCosts = field(default_factory=CpuCosts)
    network: NetworkParameters = field(default_factory=NetworkParameters)
    buffer: BufferParameters = field(default_factory=BufferParameters)
    #: Open-system workload shape; only consulted by
    #: :meth:`ParallelWarehouseSimulator.run_open_system`.
    workload: WorkloadParameters = field(default_factory=WorkloadParameters)

    #: Subqueries read bitmap fragments of one fact fragment in parallel
    #: (Section 6.2's default); False serialises them for the ablation.
    parallel_bitmap_io: bool = True
    #: Staggered round robin (Figure 2): bitmap fragments of one fact
    #: fragment go to consecutive distinct disks.  False co-locates them,
    #: which makes parallel bitmap I/O ineffective.
    staggered_allocation: bool = True
    #: "round_robin" (paper default) or "gap" — Section 4.6's shifted
    #: scheme that avoids gcd clustering for stride-structured queries.
    allocation_scheme: str = "round_robin"
    #: Section 6.3's remedy for over-fine fragmentations: this many
    #: consecutive fragments form one allocation/subquery unit whose
    #: sub-page bitmap fragments pack into whole pages.
    cluster_factor: int = 1
    #: Zipf exponent for data skew across fragments (Section 7 future
    #: work): 0 = the paper's uniform distribution; larger values make
    #: some fragments hold disproportionately many fact rows, stressing
    #: the load balancing.  Fragment ranks are permuted by `seed` so the
    #: skew does not align with the allocation order.
    data_skew: float = 0.0
    #: Merge up to this many consecutive same-disk granule reads of one
    #: subquery into a single disk request (service time is the sum of
    #: the individual services, so aggregate utilisation is unchanged).
    #: Purely an event-count control; 1 = fully faithful.
    io_coalesce: int = 1
    #: Optional global cap on concurrent subqueries across all nodes
    #: (the "degree of parallelism" axis of Figure 6); None = only the
    #: per-node limit applies.
    max_concurrent_subqueries: int | None = None
    #: Record retention for the run's :class:`SimulationResult`:
    #: ``"full"`` keeps per-query records and per-stream rollups (the
    #: historical behaviour), ``"bounded"`` folds each query into the
    #: streaming aggregates and drops the record, so memory stays O(1)
    #: in the query count (warehouse-scale open runs).  A scheduling
    #: knob: it never changes the simulated physics.
    record_retention: str = "full"
    #: Open-system stream sharding: split the session axis into this
    #: many contiguous partitions, simulate each independently and fold
    #: the per-partition results with the exact merge algebra
    #: (:meth:`repro.sim.metrics.SimulationResult.merge`).  ``1`` is the
    #: serial path, bit-identical to the pre-knob behaviour.  Values
    #: ``> 1`` are a *declared physics decomposition*: each partition
    #: sees only its own sessions' load, so cross-session contention
    #: (admission queueing, disk head travel, buffer reuse) is
    #: approximated — exact only where sessions do not interact.  Never
    #: silent: :meth:`repro.scenarios.spec.RunSpec.config_dict` hashes a
    #: ``partition_mode`` marker alongside any non-default value.
    stream_shards: int = 1
    #: Seed for the (small) stochastic choices: coordinator node and
    #: query parameter selection.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.hardware.n_disks < 1 or self.hardware.n_nodes < 1:
            raise ValueError("need at least one disk and one node")
        if self.hardware.subqueries_per_node < 1:
            raise ValueError("subqueries_per_node must be >= 1")
        if self.io_coalesce < 1:
            raise ValueError("io_coalesce must be >= 1")
        if self.cluster_factor < 1:
            raise ValueError("cluster_factor must be >= 1")
        if self.data_skew < 0:
            raise ValueError("data_skew must be non-negative")
        if self.record_retention not in ("full", "bounded"):
            raise ValueError(
                "record_retention must be 'full' or 'bounded', "
                f"got {self.record_retention!r}"
            )
        if self.stream_shards < 1:
            raise ValueError("stream_shards must be >= 1")

    def with_hardware(self, **kwargs) -> "SimulationParameters":
        """A copy with hardware fields replaced (d, p, t sweeps)."""
        from dataclasses import replace

        return replace(self, hardware=replace(self.hardware, **kwargs))
