"""FIFO servers: the building block for disks and CPUs.

Processors and disks "are explicitly modeled as servers to realistically
capture access conflicts and delays" (Section 5).  A request joins the
queue; its service time is computed when service *starts* (disks need
the head position at that moment), and its completion event carries the
request's value.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable

from repro.sim.engine import Environment, Event


class FifoServer:
    """A single server with a FIFO queue and start-time service pricing."""

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        self._queue: deque[tuple[Callable[[], float], Event, Any]] = deque()
        self._busy = False
        # Statistics
        self.busy_time = 0.0
        self.request_count = 0
        self.queue_time = 0.0
        self._last_enqueue: deque[float] = deque()

    def submit(self, service: Callable[[], float], value: Any = None) -> Event:
        """Enqueue a request; returns its completion event.

        ``service`` is called when the request reaches the server and
        must return the service duration in seconds.
        """
        done = Event(self.env)
        self._queue.append((service, done, value))
        self._last_enqueue.append(self.env.now)
        if not self._busy:
            self._start_next()
        return done

    def _start_next(self) -> None:
        service, done, value = self._queue.popleft()
        self.queue_time += self.env.now - self._last_enqueue.popleft()
        self._busy = True
        duration = service()
        if duration < 0:
            raise ValueError(f"negative service time on {self.name!r}")
        self.busy_time += duration
        self.request_count += 1
        self.env._schedule(duration, self._complete, (done, value))

    def _complete(self, pair: tuple[Event, Any]) -> None:
        done, value = pair
        self._busy = False
        if self._queue:
            self._start_next()
        done.succeed(value)

    @property
    def queue_length(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` this server spent busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)
