"""FIFO servers: the building block for disks and CPUs.

Processors and disks "are explicitly modeled as servers to realistically
capture access conflicts and delays" (Section 5).  A request joins the
queue; its service time is computed when service *starts* (disks need
the head position at that moment), and its completion event carries the
request's value.

Accounting rules:

* ``queue_time`` accrues when service starts (waiting ends);
* ``busy_time`` and ``request_count`` accrue when service *completes*,
  so a truncated run (``Environment.run(until=...)``) never reports
  more busy time than has actually elapsed.  Because the server is FIFO
  and single, completion order equals start order, so the accrual order
  (and thus the floating-point sum) is unchanged by this rule.

``service`` may be a callable priced at service start (disks) or a
plain float for pre-priced requests (CPU bursts) — the float form
avoids a closure per request on the hot path.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Any, Callable

from repro.sim.engine import Environment, Event

#: Tolerance for the utilization sanity check (float accumulation).
_UTILIZATION_SLACK = 1e-9


class FifoServer:
    """A single server with a FIFO queue and start-time service pricing."""

    __slots__ = (
        "env",
        "name",
        "_queue",
        "_busy",
        "_complete_cb",
        "busy_time",
        "request_count",
        "queue_time",
    )

    def __init__(self, env: Environment, name: str = ""):
        self.env = env
        self.name = name
        #: The bound completion callback, bound once — pushing
        #: ``self._complete`` would allocate a fresh bound method per
        #: request on the hot path.
        self._complete_cb = self._complete
        #: Waiting requests: (service, done, value, enqueue_time).
        self._queue: deque[
            tuple[Callable[[], float] | float, Event, Any, float]
        ] = deque()
        self._busy = False
        # Statistics
        self.busy_time = 0.0
        self.request_count = 0
        self.queue_time = 0.0

    def _price(self, service: Callable[[], float] | float) -> float:
        """Service duration of a request reaching the server.

        Subclasses may extend the accepted ``service`` forms (the disk
        prices extent lists directly).
        """
        return service() if callable(service) else service

    def submit(
        self, service: Callable[[], float] | float, value: Any = None
    ) -> Event:
        """Enqueue a request; returns its completion event.

        ``service`` is priced by :meth:`_price` when the request reaches
        the server: a float is taken verbatim, a callable is invoked.
        """
        env = self.env
        done = Event(env)
        if self._busy:
            self._queue.append((service, done, value, env._now))
        else:
            self._busy = True
            duration = self._price(service)
            if duration < 0:
                raise ValueError(f"negative service time on {self.name!r}")
            # Scheduling inlined (hot path): a zero-duration completion
            # lands on the heap at (now, seq), which the dispatch merge
            # orders exactly like the ready deque would.  Completions
            # beyond the calendar window go to the far-future buckets or
            # they would shadow earlier bucketed entries.
            env._seq = seq = env._seq + 1
            time = env._now + duration
            if time < env._cal_end:
                heappush(
                    env._heap,
                    (time, seq, self._complete_cb, (done, value, duration)),
                )
            else:
                env._cal_push(
                    (time, seq, self._complete_cb, (done, value, duration))
                )
        return done

    def _complete(self, entry: tuple[Event, Any, float]) -> None:
        done, value, duration = entry
        self.busy_time += duration
        self.request_count += 1
        queue = self._queue
        env = self.env
        if queue:
            service, next_done, next_value, enqueued = queue.popleft()
            self.queue_time += env._now - enqueued
            # Pre-priced floats (CPU bursts, the hot case) skip the
            # _price indirection.
            next_duration = (
                service
                if service.__class__ is float
                else self._price(service)
            )
            if next_duration < 0:
                raise ValueError(f"negative service time on {self.name!r}")
            env._seq = seq = env._seq + 1
            time = env._now + next_duration
            if time < env._cal_end:
                heappush(
                    env._heap,
                    (
                        time,
                        seq,
                        self._complete_cb,
                        (next_done, next_value, next_duration),
                    ),
                )
            else:
                env._cal_push(
                    (time, seq, self._complete_cb,
                     (next_done, next_value, next_duration))
                )
        else:
            self._busy = False
        # done.succeed(value), inlined (the completion event is fresh
        # by construction, and _complete only runs during dispatch).
        done.triggered = True
        done.value = value
        callbacks = done.callbacks
        if callbacks is None:
            return
        done.callbacks = None
        if callbacks.__class__ is list:
            for callback in callbacks:
                env._schedule(0.0, callback, value)
        else:
            heap = env._heap
            if not env._ready and (not heap or heap[0][0] > env._now):
                env.event_count += 1
                callbacks(value)
            else:
                env._seq = seq = env._seq + 1
                env._ready.append((seq, callbacks, value))

    @property
    def queue_length(self) -> int:
        return len(self._queue) + (1 if self._busy else 0)

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` this server spent busy.

        Completed service can never exceed wall time on a single FIFO
        server; a ratio above 1.0 means broken accounting, so it raises
        instead of being clamped out of sight.
        """
        if elapsed <= 0:
            return 0.0
        ratio = self.busy_time / elapsed
        if ratio > 1.0 + _UTILIZATION_SLACK:
            raise AssertionError(
                f"server {self.name!r} accounted busy_time {self.busy_time!r}"
                f" > elapsed {elapsed!r} (utilization {ratio:.6f})"
            )
        return ratio
