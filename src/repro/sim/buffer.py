"""Buffer manager: LRU pools with prefetch-granule residency.

"A simple buffer manager is used supporting LRU page replacement and
prefetching.  We maintain separate buffers for tables and indices"
(Section 5; pool sizes from Table 4: 1,000 fact pages, 5,000 bitmap
pages per node).

Residency is tracked at the granularity the I/O operates in — whole
prefetch extents — keyed by (disk, start page).  An extent counts with
its page count against the pool capacity and is evicted LRU-wise.

Internally the pool keys extents as ``disk << _DISK_SHIFT | start_page``
in an ``OrderedDict`` (C-implemented ``move_to_end``/``popitem`` beat a
plain dict's delete-reinsert on the simulator's hot path); the public
API stays (disk, start_page) pairs.
"""

from __future__ import annotations

from collections import OrderedDict

from repro.sim.config import BufferParameters

#: Bits reserved for the start page in the packed extent key; start
#: pages are bounded by the disk capacity (~2^20 pages by default).
_DISK_SHIFT = 44
_MAX_START = 1 << _DISK_SHIFT
#: Bits left for the disk id above the start-page bits (the packed key
#: stays within one signed 64-bit word).  A negative or over-wide disk
#: id would silently alias another disk's extents in the packed key, so
#: both are rejected.
_DISK_BITS = 19
_MAX_DISK = 1 << _DISK_BITS


class BufferPool:
    """One LRU pool with a page-count capacity.

    ``count_only`` marks a pool whose accesses are known to be pairwise
    distinct for the rest of its life (e.g. a single star query never
    touches the same extent twice — fragments are visited once and their
    extents are disjoint).  Distinct accesses can never hit, so hit/miss
    statistics stay exact while residency tracking is skipped; callers
    on the hot path branch on the flag to bypass the LRU work entirely.
    """

    __slots__ = ("capacity_pages", "name", "_entries", "_used_pages",
                 "hits", "misses", "count_only")

    def __init__(self, capacity_pages: int, name: str = ""):
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self.capacity_pages = capacity_pages
        self.name = name
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._used_pages = 0
        self.hits = 0
        self.misses = 0
        self.count_only = False

    @staticmethod
    def _key(disk: int, start_page: int) -> int:
        if not 0 <= start_page < _MAX_START:
            raise ValueError(f"start page {start_page} out of range")
        if not 0 <= disk < _MAX_DISK:
            raise ValueError(
                f"disk id {disk} out of range [0, {_MAX_DISK}): it would "
                f"alias another disk's extents in the packed key"
            )
        return (disk << _DISK_SHIFT) | start_page

    def lookup(self, disk: int, start_page: int) -> bool:
        """Check residency of an extent; refreshes LRU position on hit."""
        key = self._key(disk, start_page)
        if key in self._entries:
            self._entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, disk: int, start_page: int, pages: int) -> None:
        """Cache an extent, evicting least-recently-used ones as needed."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        if pages > self.capacity_pages:
            return  # larger than the whole pool: bypass
        key = self._key(disk, start_page)
        entries = self._entries
        old = entries.pop(key, None)
        used = self._used_pages
        if old is not None:
            used -= old
        while used + pages > self.capacity_pages:
            _victim, victim_pages = entries.popitem(last=False)
            used -= victim_pages
        entries[key] = pages
        self._used_pages = used + pages

    def access(self, disk: int, start_page: int, pages: int) -> bool:
        """One-step ``lookup`` + ``insert``-on-miss for the hot I/O path.

        Returns True on a hit (LRU position refreshed).  On a miss the
        extent is inserted exactly as ``insert`` would; hit/miss counts
        and the LRU state evolve identically to the two-call sequence.
        """
        key = self._key(disk, start_page)
        entries = self._entries
        if key in entries:
            entries.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        if pages <= 0:
            raise ValueError("pages must be positive")
        capacity = self.capacity_pages
        if pages > capacity:
            return False  # larger than the whole pool: bypass
        used = self._used_pages
        while used + pages > capacity:
            _victim, victim_pages = entries.popitem(last=False)
            used -= victim_pages
        entries[key] = pages
        self._used_pages = used + pages
        return False

    def access_extents(
        self,
        disk: int,
        extents: list[tuple[int, int]],
        base: int = 0,
        total_pages: int | None = None,
    ) -> tuple[list[tuple[int, int]], int]:
        """Batched :meth:`access` over one disk's extent list.

        ``extents`` may be base-relative (start pages are offsets
        against ``base``), which lets callers pass shared extent
        templates without materialising absolute lists.  ``total_pages``
        may carry the extents' precomputed page sum (work templates know
        it), sparing the counting-only path its only O(n) step.  Returns
        ``(to_read, read_pages)``: the extents that missed (in order,
        still relative) and their page sum.  Hit/miss counts and the LRU
        state evolve exactly as per-extent ``access`` calls on the
        absolute extents would.
        """
        if self.count_only:
            # Distinct accesses can only miss: everything is read.
            self.misses += len(extents)
            if total_pages is None:
                total_pages = 0
                for _offset, pages in extents:
                    total_pages += pages
            return extents, total_pages
        if not 0 <= disk < _MAX_DISK:
            raise ValueError(
                f"disk id {disk} out of range [0, {_MAX_DISK}): it would "
                f"alias another disk's extents in the packed key"
            )
        entries = self._entries
        move_to_end = entries.move_to_end
        capacity = self.capacity_pages
        # Disk bits are disjoint from page bits, so `(disk << S) | start`
        # equals this addition-based form, which folds in the base.
        key_base = (disk << _DISK_SHIFT) + base
        used = self._used_pages
        hits = 0
        misses = 0
        read_pages = 0
        to_read: list[tuple[int, int]] = []
        for extent in extents:
            start_page, pages = extent
            key = key_base + start_page
            if key in entries:
                move_to_end(key)
                hits += 1
                continue
            misses += 1
            to_read.append(extent)
            read_pages += pages
            if pages > capacity:
                continue  # larger than the whole pool: bypass
            while used + pages > capacity:
                _victim, victim_pages = entries.popitem(last=False)
                used -= victim_pages
            entries[key] = pages
            used += pages
        self.hits += hits
        self.misses += misses
        self._used_pages = used
        return to_read, read_pages

    def probe_many(
        self,
        disks: list[int],
        bases: list[int],
        extents: list[tuple[int, int]],
        total_pages: int,
    ) -> list[tuple[list[tuple[int, int]], int]] | None:
        """Bulk :meth:`access_extents` over groups sharing one template.

        Probes the ``(disks[i], bases[i])`` extent groups in order, each
        reading the shared relative ``extents`` (``total_pages`` is
        their page sum) — the layout of a work unit's bitmap reads.
        Hit/miss counts and the LRU state evolve exactly as per-group
        :meth:`access_extents` calls would.  Returns one ``(to_read,
        read_pages)`` pair per group — or ``None`` from a counting-only
        pool, whose distinct accesses can never hit: the caller reads
        every group in full (``None`` spares the hot path one result
        tuple per group; the misses are counted here).
        """
        if self.count_only:
            # Distinct accesses can only miss: everything is read.
            self.misses += len(extents) * len(disks)
            return None
        access_extents = self.access_extents
        return [
            access_extents(disk, extents, base, total_pages)
            for disk, base in zip(disks, bases)
        ]

    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferManager:
    """Per-node buffer manager: separate fact and bitmap pools."""

    __slots__ = ("fact", "bitmap")

    def __init__(self, params: BufferParameters):
        self.fact = BufferPool(params.fact_buffer_pages, name="fact")
        self.bitmap = BufferPool(params.bitmap_buffer_pages, name="bitmap")

    def pool(self, is_bitmap: bool) -> BufferPool:
        return self.bitmap if is_bitmap else self.fact

    def assume_distinct_accesses(self) -> None:
        """Declare that all future accesses use pairwise-distinct extents.

        Sound for a single star query on fresh pools: the plan visits
        each fragment once, extents within a fragment are disjoint, and
        fact/bitmap placements of different fragments never share a
        (disk, start page) key — so no access can ever hit and the LRU
        state is unobservable.  This covers the clustered expansion too
        (Section 6.3): each allocation unit appears in exactly one
        multi-fragment cluster subquery, the cluster's fact extents come
        from disjoint reserved fragment ranges, and every packed bitmap
        extent is keyed by its own (unit slot, bitmap subregion) — and
        the skewed expansion, whose fragments keep their uniformly
        reserved slots.  The disjointness is pinned per path by
        tests/sim/test_clustered_fastpath.py.  Multi-query streams must
        NOT use this.
        """
        self.fact.count_only = True
        self.bitmap.count_only = True
