"""Buffer manager: LRU pools with prefetch-granule residency.

"A simple buffer manager is used supporting LRU page replacement and
prefetching.  We maintain separate buffers for tables and indices"
(Section 5; pool sizes from Table 4: 1,000 fact pages, 5,000 bitmap
pages per node).

Residency is tracked at the granularity the I/O operates in — whole
prefetch extents — keyed by (disk, start page).  An extent counts with
its page count against the pool capacity and is evicted LRU-wise.
"""

from __future__ import annotations

from repro.sim.config import BufferParameters


class BufferPool:
    """One LRU pool with a page-count capacity."""

    def __init__(self, capacity_pages: int, name: str = ""):
        if capacity_pages < 0:
            raise ValueError("capacity_pages must be non-negative")
        self.capacity_pages = capacity_pages
        self.name = name
        self._entries: dict[tuple[int, int], int] = {}
        self._used_pages = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, disk: int, start_page: int) -> bool:
        """Check residency of an extent; refreshes LRU position on hit."""
        key = (disk, start_page)
        pages = self._entries.get(key)
        if pages is None:
            self.misses += 1
            return False
        # dicts preserve insertion order: re-insert to mark most recent.
        del self._entries[key]
        self._entries[key] = pages
        self.hits += 1
        return True

    def insert(self, disk: int, start_page: int, pages: int) -> None:
        """Cache an extent, evicting least-recently-used ones as needed."""
        if pages <= 0:
            raise ValueError("pages must be positive")
        if pages > self.capacity_pages:
            return  # larger than the whole pool: bypass
        key = (disk, start_page)
        old = self._entries.pop(key, None)
        if old is not None:
            self._used_pages -= old
        while self._used_pages + pages > self.capacity_pages:
            victim_key = next(iter(self._entries))
            self._used_pages -= self._entries.pop(victim_key)
        self._entries[key] = pages
        self._used_pages += pages

    @property
    def used_pages(self) -> int:
        return self._used_pages

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class BufferManager:
    """Per-node buffer manager: separate fact and bitmap pools."""

    def __init__(self, params: BufferParameters):
        self.fact = BufferPool(params.fact_buffer_pages, name="fact")
        self.bitmap = BufferPool(params.bitmap_buffer_pages, name="bitmap")

    def pool(self, is_bitmap: bool) -> BufferPool:
        return self.bitmap if is_bitmap else self.fact
