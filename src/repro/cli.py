"""Command-line interface: ``python -m repro <command>``.

Exposes the library's three main workflows without writing code:

* ``info``      — schema and index-configuration summary (Section 3),
* ``options``   — enumerate fragmentation options under thresholds
  (Table 2, Section 4.4),
* ``cost``      — analytic I/O cost of a query under fragmentations
  (Table 3, Section 4.5),
* ``advise``    — recommend a fragmentation for a query mix
  (Section 4.7),
* ``simulate``  — run a query type on the simulated Shared Disk PDBS
  (Sections 5-6),
* ``bench``     — execute a registered scenario matrix and persist a
  machine-readable ``BENCH_<scenario>.json`` report,
* ``lint``      — static determinism & contract checks over the package
  source (also ``python -m repro.analysis``).

Examples::

    python -m repro info
    python -m repro options --min-bitmap-pages 4
    python -m repro cost 1STORE -f customer::store -f time::month,product::group
    python -m repro advise 1MONTH1GROUP 1CODE --min-fragments 100
    python -m repro simulate 1STORE -f time::month,product::group -d 100 -p 20 -t 5
    python -m repro bench --list
    python -m repro bench --scenario fig3_speedup_1store --fast --out BENCH_fig3.json
"""

from __future__ import annotations

import argparse
import os
import random
import sys
import time

from repro.advisor.advisor import AdvisorConfig, recommend_fragmentation
from repro.analysis.engine import add_lint_arguments, run_lint
from repro.bitmap.catalog import IndexCatalog
from repro.costmodel.report import compare_fragmentations, format_table
from repro.mdhf.spec import Fragmentation
from repro.mdhf.thresholds import enumerate_fragmentations
from repro.schema.apb1 import apb1_schema
from repro.sim.config import SimulationParameters
from repro.sim.simulator import ParallelWarehouseSimulator
from repro.workload.queries import query_type


def _parse_fragmentation(text: str) -> Fragmentation:
    """``time::month,product::group`` -> Fragmentation."""
    return Fragmentation.parse(*[part.strip() for part in text.split(",")])


def _add_schema_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--channels", type=int, default=15,
        help="APB-1 channel count (scale knob; default 15, the paper's)",
    )
    parser.add_argument(
        "--density", type=float, default=0.25,
        help="fact-table density factor (default 0.25)",
    )


def _schema(args: argparse.Namespace):
    return apb1_schema(channels=args.channels, density=args.density)


def _cmd_info(args: argparse.Namespace) -> int:
    schema = _schema(args)
    catalog = IndexCatalog(schema)
    print(schema)
    print(f"fact bytes: {schema.fact_bytes:,}")
    for dim in schema.dimensions:
        levels = " > ".join(
            f"{l.name}({l.cardinality})" for l in dim.hierarchy
        )
        descriptor = catalog.descriptor(dim.name)
        print(f"  {dim.name}: {levels}  [{descriptor.kind.value} index, "
              f"{descriptor.bitmap_count} bitmaps]")
    print(f"total bitmaps: {catalog.total_bitmaps}")
    return 0


def _cmd_options(args: argparse.Namespace) -> int:
    schema = _schema(args)
    options = sorted(
        enumerate_fragmentations(
            schema,
            min_bitmap_pages=args.min_bitmap_pages,
            max_fragments=args.max_fragments,
        ),
        key=lambda option: option.fragment_count,
    )
    print(f"{len(options)} fragmentation options")
    for option in options[: args.limit]:
        print(
            f"  {str(option.fragmentation):<58} "
            f"n={option.fragment_count:>12,}  "
            f"bitmap frag={option.bitmap_fragment_pages:>8.2f} pages"
        )
    if len(options) > args.limit:
        print(f"  ... {len(options) - args.limit} more (use --limit)")
    return 0


def _cmd_cost(args: argparse.Namespace) -> int:
    schema = _schema(args)
    # repro-lint: disable=DET-RNG -- one-shot CLI entry point: the whole
    # stream derives from --seed and never mixes with simulation state.
    rng = random.Random(args.seed)
    query = query_type(args.query).instantiate(schema, rng)
    fragmentations = [_parse_fragmentation(text) for text in args.fragmentation]
    if not fragmentations:
        print("error: pass at least one -f/--fragmentation", file=sys.stderr)
        return 2
    reports = compare_fragmentations(query, fragmentations, schema)
    print(f"query: {query}")
    print(format_table(reports))
    return 0


def _cmd_advise(args: argparse.Namespace) -> int:
    schema = _schema(args)
    # repro-lint: disable=DET-RNG -- one-shot CLI entry point: the whole
    # stream derives from --seed and never mixes with simulation state.
    rng = random.Random(args.seed)
    mix = [query_type(name).instantiate(schema, rng) for name in args.queries]
    config = AdvisorConfig(
        min_bitmap_fragment_pages=args.min_bitmap_pages,
        max_fragments=args.max_fragments,
        min_fragments=args.min_fragments,
        restrict_to_query_dimensions=not args.all_dimensions,
    )
    report = recommend_fragmentation(schema, mix, config)
    print(
        f"{report.options_total} options, "
        f"{report.options_after_thresholds} past thresholds"
    )
    for rank, candidate in enumerate(report.candidates[: args.limit], start=1):
        print(
            f"{rank:>3}. {str(candidate.fragmentation):<52} "
            f"n={candidate.fragment_count:>10,}  "
            f"bitmaps={candidate.kept_bitmaps:>3}  "
            f"io={candidate.weighted_io_pages:>14,.0f} pages"
        )
    if not report.candidates:
        print("no fragmentation survived the thresholds", file=sys.stderr)
        return 1
    return 0


def _cmd_simulate(args: argparse.Namespace) -> int:
    schema = _schema(args)
    # repro-lint: disable=DET-RNG -- one-shot CLI entry point: the whole
    # stream derives from --seed and never mixes with simulation state.
    rng = random.Random(args.seed)
    query = query_type(args.query).instantiate(schema, rng)
    from dataclasses import replace

    params = replace(
        SimulationParameters().with_hardware(
            n_disks=args.disks,
            n_nodes=args.nodes,
            subqueries_per_node=args.tasks,
        ),
        io_coalesce=args.io_coalesce,
        record_retention=args.retention,
        seed=args.seed,
    )
    fragmentation = _parse_fragmentation(args.fragmentation[0])
    simulator = ParallelWarehouseSimulator(schema, fragmentation, params)
    result = simulator.run_repeated(query, args.repeat)
    print(f"query: {query}")
    print(f"fragmentation: {fragmentation}")
    print(f"hardware: d={args.disks} p={args.nodes} t={args.tasks}")
    print(f"avg response time: {result.avg_response_time:.3f} s")
    if result.queries:
        metrics = result.queries[0]
        print(f"subqueries: {metrics.subqueries:,}")
        print(f"fact pages: {metrics.fact_pages:,}  "
              f"bitmap pages: {metrics.bitmap_pages:,}")
    else:
        # Bounded retention keeps no per-query records — only the
        # streaming aggregates survive.
        print(f"retention: bounded "
              f"({result.query_count:,} queries folded, 0 records kept)")
    print(f"disk utilisation: {result.avg_disk_utilization:.0%}  "
          f"cpu utilisation: {result.avg_cpu_utilization:.0%}")
    return 0


def _bench_jobs(args: argparse.Namespace) -> int:
    """Effective pool size: --jobs, else --workers, else all CPUs."""
    if args.jobs is not None:
        return args.jobs
    if args.workers is not None:
        return args.workers
    return os.cpu_count() or 1


def _warm_progress(descriptions: list[str]) -> None:
    """Report the pre-fork cache warm-up (databases split across shards)."""
    from repro.mdhf.fragments import geometry_cache_info

    cache = geometry_cache_info()
    print(
        f"  [warm] {len(descriptions)} shared databases pre-built for "
        f"forked workers ({cache['entries']} cached geometries)",
        flush=True,
    )
    for description in descriptions:
        print(f"  [warm]   {description}", flush=True)


def _shard_progress(outcome, plan) -> None:
    """One line per completed shard (pool completion order)."""
    shard = plan.shards[outcome.index]
    if outcome.error is not None:
        status = f"FAILED at run {outcome.error.run_id!r}"
    else:
        status = f"ok {len(outcome.results):>3} runs"
    print(
        f"  [shard {outcome.index + 1}/{len(plan.shards)}] {status} "
        f"in {outcome.wall_clock_s:.2f}s  ({shard.span()})",
        flush=True,
    )


def _golden_is_stable(golden: dict) -> bool:
    """Whether a golden was written with ``--stable`` (all wall-clock
    fields zeroed).  Requiring the per-run fields too keeps a fast
    non-stable golden (whose total rounds to 0.0) from being converted."""
    return golden.get("wall_clock_s") == 0.0 and all(
        entry.get("wall_clock_s") == 0.0
        for entry in golden.get("runs", [])
    )


def _cmd_bench_regen_all(args: argparse.Namespace) -> int:
    """Regenerate every scenario's committed golden(s) in one sweep.

    Iterates the registry, regenerates each golden variant that exists
    on disk (``_fast`` and/or full-matrix, preserving each file's
    stability mode), and ends with a per-scenario fingerprint diff
    summary — so a schema migration is one command.
    """
    import json

    from repro.scenarios import (
        ScenarioRunner,
        ShardExecutionError,
        golden_filename,
        iter_scenarios,
        write_report,
    )

    for flag, value in (
        ("--scenario", args.scenario), ("--out", args.out),
        ("--runs", args.runs), ("--seed", args.seed),
        ("--seeds", args.seeds), ("--check", args.check),
        ("--stream-shards", args.stream_shards),
    ):
        if value is not None:
            print(f"error: {flag} cannot be combined with --regen-all",
                  file=sys.stderr)
            return 2
    if args.regen:
        print("error: pass either --regen or --regen-all, not both",
              file=sys.stderr)
        return 2
    if args.fast:
        print("error: --regen-all regenerates whichever golden variants "
              "exist on disk; --fast is meaningless here",
              file=sys.stderr)
        return 2
    if not os.path.isdir(args.golden_dir):
        print(f"error: golden directory {args.golden_dir!r} does not "
              f"exist (run from the repo root or pass --golden-dir)",
              file=sys.stderr)
        return 2
    jobs = _bench_jobs(args)
    summary = []
    skipped = []
    for scenario in iter_scenarios():
        variants = []
        for fast in (True, False):
            path = os.path.join(
                args.golden_dir, golden_filename(scenario.name, fast)
            )
            if os.path.exists(path):
                variants.append((fast, path))
        if not variants:
            skipped.append(scenario.name)
            continue
        for fast, path in variants:
            try:
                with open(path) as handle:
                    golden_before = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: cannot read existing golden {path}: {exc} "
                      f"(delete the file to regenerate from scratch)",
                      file=sys.stderr)
                return 2
            stable = args.stable or _golden_is_stable(golden_before)
            started = time.perf_counter()
            try:
                report = ScenarioRunner(scenario, jobs=jobs, fast=fast).run()
            except ShardExecutionError as exc:
                print(f"error: run point {exc.run_id!r} of scenario "
                      f"{scenario.name!r} failed: {exc}", file=sys.stderr)
                return 1
            write_report(report, path, stable=stable)
            summary.append((
                os.path.basename(path),
                golden_before.get("metrics_fingerprint"),
                report.metrics_fingerprint(),
            ))
            print(f"regenerated {path} "
                  f"({time.perf_counter() - started:.1f}s)", flush=True)
    if skipped:
        print(f"skipped (no committed golden): {', '.join(skipped)}")
    print("\nfingerprint diff summary:")
    changed = 0
    for name, old_fp, new_fp in summary:
        if old_fp == new_fp:
            print(f"  {name:<44} unchanged")
        else:
            changed += 1
            print(f"  {name:<44} CHANGED")
            print(f"    {old_fp}")
            print(f"    -> {new_fp}")
    print(f"{changed}/{len(summary)} goldens changed fingerprint")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        ScenarioRunner,
        ShardExecutionError,
        compare_to_golden,
        get_scenario,
        golden_filename,
        iter_scenarios,
        write_report,
    )

    if args.regen_all:
        return _cmd_bench_regen_all(args)
    if args.list:
        for scenario in iter_scenarios():
            figure = scenario.figure or "beyond-paper"
            print(
                f"{scenario.name:<32} {figure:<13} "
                f"{len(scenario.runs):>3} runs  {scenario.title}"
            )
        return 0
    if not args.scenario:
        print("error: pass --scenario NAME or --list", file=sys.stderr)
        return 2
    try:
        scenario = get_scenario(args.scenario)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    golden_before = None
    if args.regen:
        # Regenerate the committed golden in place; the flags that would
        # change the run matrix away from the golden's are rejected.
        for flag, value in (
            ("--out", args.out), ("--runs", args.runs),
            ("--seed", args.seed), ("--seeds", args.seeds),
            ("--check", args.check),
            # Goldens pin the serial physics; a sharded regeneration
            # would silently re-pin the partitioned approximation.
            ("--stream-shards", args.stream_shards),
        ):
            if value is not None:
                print(f"error: {flag} cannot be combined with --regen",
                      file=sys.stderr)
                return 2
        if not os.path.isdir(args.golden_dir):
            print(f"error: golden directory {args.golden_dir!r} does not "
                  f"exist (run from the repo root or pass --golden-dir)",
                  file=sys.stderr)
            return 2
        out = os.path.join(
            args.golden_dir, golden_filename(scenario.name, args.fast)
        )
        if os.path.exists(out):
            import json

            try:
                with open(out) as handle:
                    golden_before = json.load(handle)
            except (OSError, json.JSONDecodeError) as exc:
                print(f"error: cannot read existing golden {out}: {exc} "
                      f"(delete the file to regenerate from scratch)",
                      file=sys.stderr)
                return 2
            # An explicit --stable wins; otherwise preserve the golden's
            # stability mode.  Stable reports zero *every* wall-clock
            # field; requiring the per-run fields too keeps a fast
            # non-stable golden (whose total happens to round to 0.0)
            # from being silently converted.
            if not args.stable:
                args.stable = _golden_is_stable(golden_before)
        else:
            sibling = os.path.join(
                args.golden_dir,
                golden_filename(scenario.name, not args.fast),
            )
            if os.path.exists(sibling):
                # Don't silently fork a second golden variant (the
                # nightly sweep would then run both matrices forever).
                hint = (
                    "drop --fast" if args.fast else "add --fast"
                )
                print(
                    f"error: no {out} but {sibling} exists; {hint} to "
                    f"regenerate the committed golden, or remove the "
                    f"existing file first to switch variants",
                    file=sys.stderr,
                )
                return 2
    else:
        out = args.out or f"BENCH_{scenario.name}.json"
    out_dir = os.path.dirname(out) or "."
    if not os.path.isdir(out_dir):
        print(f"error: output directory {out_dir!r} does not exist",
              file=sys.stderr)
        return 2
    run_ids = None
    if args.runs:
        run_ids = [part.strip() for part in args.runs.split(",") if part.strip()]
        known = {run.run_id for run in scenario.expand(fast=args.fast)}
        unknown = [run_id for run_id in run_ids if run_id not in known]
        if unknown:
            print(
                f"error: unknown run ids {unknown}; known: {sorted(known)}",
                file=sys.stderr,
            )
            return 2
    seeds = None
    if args.seeds is not None:
        try:
            seeds = [int(part) for part in args.seeds.split(",") if part.strip()]
        except ValueError:
            print(f"error: --seeds wants comma-separated integers, got "
                  f"{args.seeds!r}", file=sys.stderr)
            return 2
    if args.check is not None and not os.path.isfile(args.check):
        # Validate before the (possibly multi-minute) sweep runs.
        print(f"error: golden report {args.check!r} does not exist",
              file=sys.stderr)
        return 2
    jobs = _bench_jobs(args)
    if args.stream_shards is not None:
        from repro.scenarios.shard import stream_oversubscription_error

        problem = stream_oversubscription_error(jobs, args.stream_shards)
        if problem is not None:
            print(f"error: {problem}", file=sys.stderr)
            return 2
    try:
        # The runner owns the semantic validation (jobs >= 1, distinct
        # non-empty seeds, seed-vs-seeds exclusivity, stream_shards >= 1
        # and open-system-only), so library and CLI callers share one
        # set of rules.
        runner = ScenarioRunner(
            scenario, jobs=jobs, fast=args.fast, seed=args.seed,
            run_ids=run_ids, seeds=seeds, stream_shards=args.stream_shards,
            on_shard=_shard_progress if jobs > 1 else None,
            on_warm=_warm_progress if jobs > 1 else None,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        report = runner.run()
    except ShardExecutionError as exc:
        print(f"error: {exc}", file=sys.stderr)
        print(f"error: run point {exc.run_id!r} (shard {exc.shard_index}) "
              f"failed; see the traceback above", file=sys.stderr)
        return 1
    write_report(report, out, stable=args.stable)
    if args.regen:
        new_fingerprint = report.metrics_fingerprint()
        if golden_before is None:
            print(f"regenerated {out} (new golden)")
            print(f"fingerprint: (none) -> {new_fingerprint}")
        else:
            old_fingerprint = golden_before.get("metrics_fingerprint")
            changed = (
                "unchanged" if old_fingerprint == new_fingerprint
                else "CHANGED"
            )
            print(f"regenerated {out} ({changed})")
            print(f"fingerprint: {old_fingerprint}")
            print(f"          -> {new_fingerprint}")
        return 0
    print(f"scenario: {scenario.name} ({scenario.title})")
    for result in report.runs:
        response = result.metrics.get(
            "response_time_s", result.metrics.get("avg_response_time_s")
        )
        shown = f"{response:.3f} s" if response is not None else "-"
        queue_delay = result.metrics.get("avg_queue_delay_s")
        queued = (
            f"  queue {queue_delay:.3f} s" if queue_delay is not None else ""
        )
        print(
            f"  {result.run_id:<24} {shown:>12}{queued}  "
            f"[{result.wall_clock_s:.2f}s wall]"
        )
    print(f"fingerprint: {report.metrics_fingerprint()}")
    print(f"wrote {out} ({len(report.runs)} runs, "
          f"{report.wall_clock_s:.1f}s wall)")
    if args.check:
        import json

        with open(args.check) as handle:
            golden = json.load(handle)
        problems = compare_to_golden(report, golden)
        golden_wall = {
            entry["run_id"]: entry.get("wall_clock_s")
            for entry in golden.get("runs", [])
        }
        for result in report.runs:
            recorded = golden_wall.get(result.run_id)
            if recorded:
                print(
                    f"  wall delta {result.run_id:<24} "
                    f"{recorded:.2f}s -> {result.wall_clock_s:.2f}s "
                    f"({recorded / max(result.wall_clock_s, 1e-9):.2f}x)"
                )
        if problems:
            for problem in problems:
                print(f"check FAILED: {problem}", file=sys.stderr)
            return 1
        print(f"check OK: metrics match {args.check}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser with all subcommands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="MDHF data allocation for parallel data warehouses "
                    "(Stöhr/Märtens/Rahm, VLDB 2000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    info = sub.add_parser("info", help="schema and index summary")
    _add_schema_arguments(info)
    info.set_defaults(handler=_cmd_info)

    options = sub.add_parser("options", help="enumerate fragmentations (Table 2)")
    _add_schema_arguments(options)
    options.add_argument("--min-bitmap-pages", type=float, default=0.0)
    options.add_argument("--max-fragments", type=int, default=None)
    options.add_argument("--limit", type=int, default=20)
    options.set_defaults(handler=_cmd_options)

    cost = sub.add_parser("cost", help="analytic I/O cost (Table 3)")
    _add_schema_arguments(cost)
    cost.add_argument("query", help="query type, e.g. 1STORE")
    cost.add_argument(
        "-f", "--fragmentation", action="append", default=[],
        help="comma-separated attributes, e.g. time::month,product::group",
    )
    cost.add_argument("--seed", type=int, default=0)
    cost.set_defaults(handler=_cmd_cost)

    advise = sub.add_parser("advise", help="recommend a fragmentation (Section 4.7)")
    _add_schema_arguments(advise)
    advise.add_argument("queries", nargs="+", help="query types of the mix")
    advise.add_argument("--min-bitmap-pages", type=float, default=4.0)
    advise.add_argument("--max-fragments", type=int, default=None)
    advise.add_argument("--min-fragments", type=int, default=1)
    advise.add_argument("--all-dimensions", action="store_true")
    advise.add_argument("--limit", type=int, default=10)
    advise.add_argument("--seed", type=int, default=0)
    advise.set_defaults(handler=_cmd_advise)

    simulate = sub.add_parser("simulate", help="simulate a query (Sections 5-6)")
    _add_schema_arguments(simulate)
    simulate.add_argument("query", help="query type, e.g. 1STORE")
    simulate.add_argument(
        "-f", "--fragmentation", action="append", required=True,
        help="comma-separated attributes",
    )
    simulate.add_argument("-d", "--disks", type=int, default=100)
    simulate.add_argument("-p", "--nodes", type=int, default=20)
    simulate.add_argument("-t", "--tasks", type=int, default=4)
    simulate.add_argument("--repeat", type=int, default=1)
    simulate.add_argument("--io-coalesce", type=int, default=8)
    simulate.add_argument(
        "--retention", choices=("full", "bounded"), default="full",
        help="record retention: 'bounded' folds every query into the "
             "streaming aggregates and keeps no per-query records "
             "(constant memory for any --repeat)",
    )
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(handler=_cmd_simulate)

    bench = sub.add_parser(
        "bench", help="run a scenario matrix, write BENCH_<scenario>.json"
    )
    bench.add_argument("--scenario", help="registered scenario name")
    bench.add_argument(
        "--list", action="store_true", help="list registered scenarios"
    )
    bench.add_argument(
        "--fast", action="store_true",
        help="run the scenario's reduced sweep (same shape, fewer points)",
    )
    bench.add_argument(
        "-j", "--jobs", type=int, default=None,
        help="shard the run matrix across this many worker processes "
             "(default: all CPUs; 1 = the serial path; the metrics "
             "fingerprint is identical for any value, and reports are "
             "byte-identical under --stable)",
    )
    bench.add_argument(
        "--workers", type=int, default=None,
        help="deprecated alias for --jobs",
    )
    bench.add_argument(
        "--stream-shards", type=int, default=None, metavar="N",
        help="split each open-system run's session axis into N "
             "independently simulated partitions folded with the exact "
             "merge algebra (intra-run parallelism; pooled up to "
             "min(N, --jobs) workers on the serial driver path). "
             "N > 1 approximates cross-partition contention, so the "
             "config hash gains a partition_mode marker — sharded "
             "reports never compare equal to serial goldens",
    )
    bench.add_argument(
        "--out", default=None,
        help="output path (default BENCH_<scenario>.json in the cwd)",
    )
    bench.add_argument(
        "--seed", type=int, default=None,
        help="override every run's seed (default: the registered seeds)",
    )
    bench.add_argument(
        "--seeds", default=None, metavar="S0,S1,...",
        help="replicate the matrix over these seeds (run_ids gain a "
             "_s<seed> suffix); the seed axis is sharded like any other",
    )
    bench.add_argument(
        "--runs", default=None,
        help="comma-separated run_ids: execute only this subset of the "
             "(possibly fast-reduced) matrix",
    )
    bench.add_argument(
        "--stable", action="store_true",
        help="zero host wall-clock fields in the written report so two "
             "same-seed runs are byte-identical",
    )
    bench.add_argument(
        "--check", default=None, metavar="GOLDEN_JSON",
        help="compare metrics against a golden BENCH report (exit 1 on "
             "mismatch) and print wall-clock deltas",
    )
    bench.add_argument(
        "--regen", action="store_true",
        help="regenerate the scenario's committed golden in place "
             "(benchmarks/results/BENCH_<scenario>[_fast].json, honouring "
             "--fast) and print the fingerprint diff",
    )
    bench.add_argument(
        "--regen-all", action="store_true",
        help="regenerate every scenario's committed golden(s) — whichever "
             "variants exist under --golden-dir — and print a "
             "per-scenario fingerprint diff summary",
    )
    bench.add_argument(
        "--golden-dir", default=os.path.join("benchmarks", "results"),
        help="where --regen reads/writes goldens "
             "(default benchmarks/results)",
    )
    bench.set_defaults(handler=_cmd_bench)

    lint = sub.add_parser(
        "lint",
        help="static determinism & contract checks over the repro package",
    )
    add_lint_arguments(lint)
    lint.set_defaults(handler=run_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
