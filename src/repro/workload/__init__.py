"""Workload generation: the paper's APB-1 query types (Sections 3, 6).

Named templates (``1STORE``, ``1MONTH``, ``1CODE``, ``1MONTH1GROUP``,
``1CODE1QUARTER``, ...) with randomly drawn parameter values, issued as
a single-user stream exactly as the paper's query generator does.
"""

from repro.workload.arrivals import (
    ARRIVAL_BURSTY,
    ARRIVAL_FIXED,
    ARRIVAL_KINDS,
    ARRIVAL_POISSON,
    ArrivalProcess,
    derive_rng,
    think_time_draw,
)
from repro.workload.queries import (
    APB1_QUERY_TYPES,
    make_template,
    query_type,
)
from repro.workload.generator import WorkloadGenerator

__all__ = [
    "APB1_QUERY_TYPES",
    "ARRIVAL_BURSTY",
    "ARRIVAL_FIXED",
    "ARRIVAL_KINDS",
    "ARRIVAL_POISSON",
    "ArrivalProcess",
    "derive_rng",
    "query_type",
    "make_template",
    "think_time_draw",
    "WorkloadGenerator",
]
