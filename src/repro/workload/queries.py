"""The paper's named star-query types.

Each type fixes the referenced attributes; concrete values are drawn at
query-generation time ("specific parameters are chosen at random (e.g.,
the actual STORE selected)", Section 5).  Names follow the paper:
``1MONTH1GROUP`` selects one month and one product group.
"""

from __future__ import annotations

import re

from repro.mdhf.query import QueryTemplate
from repro.schema.dimension import AttributeRef

#: Attribute behind each name token used by the paper's query names.
_TOKEN_ATTRIBUTES = {
    "STORE": "customer::store",
    "RETAILER": "customer::retailer",
    "MONTH": "time::month",
    "QUARTER": "time::quarter",
    "YEAR": "time::year",
    "CHANNEL": "channel::channel",
    "CODE": "product::code",
    "CLASS": "product::class",
    "GROUP": "product::group",
    "FAMILY": "product::family",
    "LINE": "product::line",
    "DIVISION": "product::division",
}

_TOKEN_PATTERN = re.compile(r"(\d+)([A-Z]+)")


def make_template(name: str) -> QueryTemplate:
    """Build a template from the paper's naming scheme.

    ``"1MONTH1GROUP"`` -> one value of time::month and one of
    product::group; ``"2STORE"`` would select two stores (an IN-list).
    """
    tokens = _TOKEN_PATTERN.findall(name)
    if not tokens or "".join(f"{c}{t}" for c, t in tokens) != name:
        raise ValueError(
            f"cannot parse query type {name!r}; expected e.g. '1MONTH1GROUP'"
        )
    attributes = []
    counts = []
    for count_text, token in tokens:
        if token not in _TOKEN_ATTRIBUTES:
            raise ValueError(
                f"unknown attribute token {token!r} in {name!r}; "
                f"known: {sorted(_TOKEN_ATTRIBUTES)}"
            )
        attributes.append(AttributeRef.parse(_TOKEN_ATTRIBUTES[token]))
        counts.append(int(count_text))
    return QueryTemplate(
        name=name,
        attributes=tuple(attributes),
        values_per_attribute=tuple(counts),
    )


#: The query types the paper's experiments use.
APB1_QUERY_TYPES: dict[str, QueryTemplate] = {
    name: make_template(name)
    for name in (
        "1STORE",
        "1MONTH",
        "1CODE",
        "1MONTH1GROUP",
        "1CODE1QUARTER",
        "1CODE1MONTH",
        "1GROUP",
        "1QUARTER",
    )
}


def query_type(name: str) -> QueryTemplate:
    """Look up a predefined type, or build it from the naming scheme."""
    if name in APB1_QUERY_TYPES:
        return APB1_QUERY_TYPES[name]
    return make_template(name)
