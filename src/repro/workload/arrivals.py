"""Arrival processes for open-system workloads.

The paper's experiments are single-user ("a new query starting as soon
as the previous one has terminated", Section 5) and its Section 7 defers
multi-user mode to future work.  This module supplies the missing
workload side of an *open* system: queries (or user sessions) arrive
according to a stochastic process instead of back-to-back, so the
simulator can trace throughput-vs-offered-load and response-time knee
curves for any fragmentation choice.

Three interarrival distributions are supported, all deterministic under
a fixed seed:

* ``poisson`` — exponential interarrival times (the classic open-system
  M/…/… arrival stream) at ``rate_qps`` arrivals per second,
* ``fixed``   — a deterministic arrival every ``1 / rate_qps`` seconds
  (zero burstiness, same offered load),
* ``bursty``  — batch-Poisson: batches of ``burst_size`` simultaneous
  arrivals whose batch gaps are exponential with mean
  ``burst_size / rate_qps``, so the *offered load* matches the other
  two processes while short-term congestion is much higher.

Determinism: every draw comes from a :class:`random.Random` seeded with
:func:`derive_rng` — a string-keyed derivation (``seed:salt:...``) that
hashes through SHA-512 inside ``random.seed`` and is therefore stable
across platforms, processes and scheduling-order refactors.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

#: Supported arrival-process kinds.
ARRIVAL_POISSON = "poisson"
ARRIVAL_FIXED = "fixed"
ARRIVAL_BURSTY = "bursty"

ARRIVAL_KINDS = (ARRIVAL_POISSON, ARRIVAL_FIXED, ARRIVAL_BURSTY)


def derive_rng(seed: int, *salt: object) -> random.Random:
    """A deterministically derived RNG for one labelled draw site.

    ``random.Random`` seeds strings through SHA-512 (seed version 2),
    so the derived stream depends only on ``seed`` and the salt values —
    never on hash randomisation or on how many draws other sites made
    before this one.
    """
    return random.Random(":".join(str(part) for part in (seed, *salt)))


@dataclass(frozen=True)
class ArrivalProcess:
    """A seed-driven interarrival distribution at a fixed offered load."""

    kind: str = ARRIVAL_POISSON
    #: Offered load: mean arrivals per second across the whole process.
    rate_qps: float = 1.0
    #: Arrivals per batch for the ``bursty`` kind (ignored otherwise).
    burst_size: int = 4

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival process {self.kind!r}; "
                f"known: {list(ARRIVAL_KINDS)}"
            )
        if self.rate_qps <= 0:
            raise ValueError("rate_qps must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be >= 1")

    # -----------------------------------------------------------------
    def iter_interarrivals(self, count: int, seed: int):
        """Lazily yield ``count`` gaps between consecutive arrivals.

        The generator draws each gap on demand, so an open-system run
        over millions of sessions never materialises the gap list.  The
        draw sequence — and therefore every yielded value — is
        identical to :meth:`interarrivals` for the same arguments.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        rng = derive_rng(seed, "arrivals", self.kind, self.rate_qps,
                         self.burst_size)
        if self.kind == ARRIVAL_FIXED:
            gap = 1.0 / self.rate_qps
            for _ in range(count):
                yield gap
            return
        if self.kind == ARRIVAL_POISSON:
            expo = rng.expovariate
            rate = self.rate_qps
            for _ in range(count):
                yield expo(rate)
            return
        # Bursty: whole batches share one arrival instant; gaps between
        # batches are exponential with mean burst_size / rate, so the
        # long-run offered load equals rate_qps.  One exponential draw
        # per *emitted* batch head, matching the eager implementation.
        batch_rate = self.rate_qps / self.burst_size
        emitted = 0
        while emitted < count:
            yield rng.expovariate(batch_rate)
            emitted += 1
            for _ in range(min(self.burst_size - 1, count - emitted)):
                yield 0.0
                emitted += 1

    def interarrivals(self, count: int, seed: int) -> list[float]:
        """``count`` gaps between consecutive arrivals (first gap is the
        delay of the first arrival after time zero)."""
        return list(self.iter_interarrivals(count, seed))

    def iter_arrival_slice(self, count: int, seed: int, start: int, stop: int):
        """Lazily yield ``(session_id, delay)`` for sessions ``[start, stop)``.

        The partitioned form of :meth:`iter_interarrivals`: the first
        yielded delay is the *absolute* arrival instant of session
        ``start`` (the prefix gaps folded left-to-right with the same
        float additions the event engine performs, so it is bit-equal
        to the serial timeline's clock at that arrival), and every
        following delay is that session's serial interarrival gap.

        All draws come from the **one serial RNG stream** — the slice
        re-draws the prefix it skips instead of re-salting a per-shard
        RNG — so concatenating the gaps used by the slices of any
        partition of ``[0, count)`` reproduces the serial draw sequence
        exactly.  An empty slice (``start == stop``) yields nothing and
        draws nothing.  Prefix re-drawing is O(start) RNG calls with no
        simulation attached, which is negligible next to simulating the
        slice itself.
        """
        if not 0 <= start <= stop <= count:
            raise ValueError(
                f"arrival slice [{start}, {stop}) out of range for "
                f"{count} sessions"
            )
        if start == stop:
            return
        # Drawing with count=stop yields the same first `stop` gaps as
        # drawing with the full count: the fixed and poisson kinds are
        # memoryless per gap, and the bursty kind truncates only the
        # *tail* zero-fills of its final batch.
        gaps = self.iter_interarrivals(stop, seed)
        offset = 0.0
        for _ in range(start + 1):
            # Unconditional add matches the engine's skip-zero-gap
            # timeline bit for bit: t + 0.0 == t for every t >= 0.
            offset = offset + next(gaps)
        yield start, offset
        for session_id in range(start + 1, stop):
            yield session_id, next(gaps)

    def arrival_times(self, count: int, seed: int) -> list[float]:
        """Absolute arrival instants (cumulative interarrival sums)."""
        times = []
        now = 0.0
        for gap in self.interarrivals(count, seed):
            now += gap
            times.append(now)
        return times

    @property
    def mean_interarrival_s(self) -> float:
        return 1.0 / self.rate_qps


def partition_sessions(count: int, shards: int) -> tuple[tuple[int, int], ...]:
    """Balanced contiguous ``(start, stop)`` slices of ``range(count)``.

    The deterministic session partition behind stream sharding: the
    first ``count % shards`` slices hold one extra session, later
    slices may be empty when ``shards > count``.  Concatenating the
    slices always reproduces ``range(count)`` exactly, so the union of
    the per-slice arrival draws (:meth:`ArrivalProcess.iter_arrival_slice`)
    is the serial draw sequence.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if shards < 1:
        raise ValueError("shards must be >= 1")
    base, extra = divmod(count, shards)
    slices = []
    start = 0
    for index in range(shards):
        stop = start + base + (1 if index < extra else 0)
        slices.append((start, stop))
        start = stop
    return tuple(slices)


def think_time_draw(rng: random.Random, mean_s: float) -> float:
    """One exponential think time with the given mean (0 mean = none).

    Used between consecutive queries of one session in closed/open
    hybrid mode: the session "reads the previous answer" before issuing
    the next query.
    """
    if mean_s < 0:
        raise ValueError("mean think time must be non-negative")
    if mean_s == 0:
        return 0.0
    return rng.expovariate(1.0 / mean_s)
