"""Single-user query stream generation (Section 5).

"A query generator creates a series of query structures that are passed
to the processing module ...  queries are issued sequentially with a new
query starting as soon as the previous one has terminated.  For a single
simulation, all queries are of the same type (e.g., 1STORE), but
specific parameters are chosen at random."

A mixed-type mode (weighted choice per query) is provided for the
advisor's query-mix analyses.
"""

from __future__ import annotations

import random
from typing import Iterator, Sequence

from repro.mdhf.query import QueryTemplate, StarQuery
from repro.schema.fact import StarSchema
from repro.workload.queries import query_type


class WorkloadGenerator:
    """Deterministic (seeded) generator of concrete star queries."""

    def __init__(
        self,
        schema: StarSchema,
        templates: Sequence[QueryTemplate | str],
        weights: Sequence[float] | None = None,
        seed: int = 0,
    ):
        if not templates:
            raise ValueError("need at least one query template")
        self.schema = schema
        self.templates = [
            query_type(t) if isinstance(t, str) else t for t in templates
        ]
        if weights is not None:
            if len(weights) != len(self.templates):
                raise ValueError("weights must match templates")
            if any(w < 0 for w in weights) or sum(weights) <= 0:
                raise ValueError("weights must be non-negative, not all zero")
        self.weights = list(weights) if weights is not None else None
        self._rng = random.Random(seed)

    def next_query(self) -> StarQuery:
        """Draw one concrete query."""
        if len(self.templates) == 1:
            template = self.templates[0]
        elif self.weights is not None:
            template = self._rng.choices(self.templates, self.weights)[0]
        else:
            template = self._rng.choice(self.templates)
        return template.instantiate(self.schema, self._rng)

    def stream(self, count: int) -> Iterator[StarQuery]:
        """A finite single-user stream of ``count`` queries."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            yield self.next_query()

    def batch(self, count: int) -> list[StarQuery]:
        return list(self.stream(count))
