"""repro — Multi-Dimensional Database Allocation for Parallel Data Warehouses.

A from-scratch Python reproduction of Stöhr, Märtens & Rahm (VLDB 2000):
MDHF multi-dimensional hierarchical fragmentation of star schemas,
fragmentation-aligned (encoded) bitmap join indices, staggered
round-robin disk allocation, the analytic I/O cost model, the allocation
advisor, and a SIMPAD-equivalent Shared Disk PDBS simulator that
regenerates every table and figure of the paper's evaluation.

Quickstart::

    from repro import (apb1_schema, Fragmentation,
                       ParallelWarehouseSimulator, query_type)
    import random

    schema = apb1_schema()
    fragmentation = Fragmentation.parse("time::month", "product::group")
    sim = ParallelWarehouseSimulator(schema, fragmentation)
    query = query_type("1MONTH1GROUP").instantiate(schema, random.Random(0))
    result = sim.run([query])
    print(result.avg_response_time)
"""

from repro.schema import (
    AttributeRef,
    Dimension,
    FactTable,
    Hierarchy,
    Level,
    StarSchema,
    Warehouse,
    apb1_schema,
    generate_warehouse,
    tiny_schema,
)
from repro.bitmap import (
    BitVector,
    EncodedBitmapJoinIndex,
    HierarchicalEncoding,
    IndexCatalog,
    SimpleBitmapIndex,
)
from repro.mdhf import (
    Fragmentation,
    FragmentGeometry,
    IOClass,
    Predicate,
    QueryClass,
    QueryPlan,
    RangePartition,
    StarQuery,
    classify_io,
    classify_query,
    eliminate_bitmaps,
    enumerate_fragmentations,
    max_fragment_threshold,
    plan_query,
)
from repro.costmodel import IOCostEstimate, IOCostParameters, estimate_io
from repro.allocation import DiskAllocation, build_allocation
from repro.sim import (
    HardwareParameters,
    ParallelWarehouseSimulator,
    QueryMetrics,
    SimulationParameters,
    SimulationResult,
)
from repro.exec import AggregateResult, WarehouseEngine, full_scan_aggregate
from repro.workload import APB1_QUERY_TYPES, WorkloadGenerator, query_type
from repro.advisor import AdvisorConfig, recommend_fragmentation
from repro.scenarios import (
    BenchReport,
    RunSpec,
    ScenarioRunner,
    ScenarioSpec,
    get_scenario,
    scenario_names,
)

__version__ = "1.0.0"

__all__ = [
    # schema
    "Level",
    "Hierarchy",
    "Dimension",
    "AttributeRef",
    "FactTable",
    "StarSchema",
    "apb1_schema",
    "tiny_schema",
    "Warehouse",
    "generate_warehouse",
    # bitmap
    "BitVector",
    "SimpleBitmapIndex",
    "EncodedBitmapJoinIndex",
    "HierarchicalEncoding",
    "IndexCatalog",
    # mdhf
    "Fragmentation",
    "RangePartition",
    "FragmentGeometry",
    "StarQuery",
    "Predicate",
    "QueryClass",
    "IOClass",
    "classify_query",
    "classify_io",
    "QueryPlan",
    "plan_query",
    "eliminate_bitmaps",
    "enumerate_fragmentations",
    "max_fragment_threshold",
    # cost model
    "IOCostParameters",
    "IOCostEstimate",
    "estimate_io",
    # allocation
    "DiskAllocation",
    "build_allocation",
    # simulator
    "ParallelWarehouseSimulator",
    "SimulationParameters",
    "HardwareParameters",
    "SimulationResult",
    "QueryMetrics",
    # exec
    "WarehouseEngine",
    "AggregateResult",
    "full_scan_aggregate",
    # workload
    "APB1_QUERY_TYPES",
    "query_type",
    "WorkloadGenerator",
    # advisor
    "AdvisorConfig",
    "recommend_fragmentation",
    # scenarios
    "BenchReport",
    "RunSpec",
    "ScenarioRunner",
    "ScenarioSpec",
    "get_scenario",
    "scenario_names",
]
