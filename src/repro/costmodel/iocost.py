"""Per-query I/O cost estimation under a fragmentation (Section 4.5).

Two regimes, matching the paper's I/O classes:

* **all rows relevant** (IOC1/IOC1-opt, and IOC3-style full-fragment
  scans): every page of every selected fragment is read sequentially in
  prefetch granules — ``ceil(pages / granule)`` operations per fragment;
* **bitmap-driven** (IOC2/IOC2-nosupp): the bitmap fragments of the
  required bitmaps are read first, then only the fact granules that
  contain hit pages (Yao page estimate, then granule estimate).

Bitmap fragments are read wholly (their purpose is to identify hits);
their page cost is the fragment size rounded up to whole pages, their
operation cost rounds up to the bitmap prefetch granule.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.costmodel.estimator import cardenas, distinct_blocks
from repro.mdhf.fragments import geometry_for
from repro.mdhf.routing import QueryPlan
from repro.schema.fact import StarSchema


@dataclass(frozen=True)
class IOCostParameters:
    """Physical I/O parameters (defaults from Table 4)."""

    page_size: int = 4096
    prefetch_fact: int = 8
    prefetch_bitmap: int = 5
    #: If True, the bitmap prefetch granule adapts to the bitmap-fragment
    #: size (Table 6 annotates granules 5/3/1 for sizes 4.9/2.5/0.16).
    adaptive_bitmap_prefetch: bool = True

    def bitmap_granule(self, bitmap_fragment_pages: float) -> int:
        """Effective bitmap prefetch granule for a fragment size."""
        if not self.adaptive_bitmap_prefetch:
            return self.prefetch_bitmap
        return max(1, min(self.prefetch_bitmap, math.ceil(bitmap_fragment_pages)))


@dataclass(frozen=True)
class IOCostEstimate:
    """Estimated I/O work for one query under one fragmentation."""

    fragment_count: int
    fact_io_ops: float
    fact_pages: float
    bitmap_io_ops: float
    bitmap_pages: float

    page_size: int = 4096

    @property
    def total_ops(self) -> float:
        """Fact plus bitmap I/O operations."""
        return self.fact_io_ops + self.bitmap_io_ops

    @property
    def total_pages(self) -> float:
        """Fact plus bitmap pages transferred."""
        return self.fact_pages + self.bitmap_pages

    @property
    def total_bytes(self) -> float:
        """Total transferred bytes."""
        return self.total_pages * self.page_size

    @property
    def total_mib(self) -> float:
        """Total transferred data in MiB (the paper's 'MB')."""
        return self.total_bytes / (1024 * 1024)


def estimate_io(
    plan: QueryPlan,
    schema: StarSchema,
    params: IOCostParameters | None = None,
) -> IOCostEstimate:
    """Estimate the I/O cost of a routed query (Section 4.5)."""
    if params is None:
        params = IOCostParameters()
    geometry = geometry_for(schema, plan.fragmentation)
    n_selected = plan.fragment_count

    tuples_per_fragment = schema.fact_count / geometry.fragment_count
    tuples_per_page = schema.tuples_per_page(params.page_size)
    pages_per_fragment = math.ceil(tuples_per_fragment / tuples_per_page)
    granules_per_fragment = math.ceil(pages_per_fragment / params.prefetch_fact)

    if plan.all_rows_relevant:
        # Full sequential scan of each selected fragment.
        fact_ops = n_selected * granules_per_fragment
        fact_pages = n_selected * pages_per_fragment
    else:
        hits = plan.hits_per_fragment
        hit_pages = distinct_blocks(
            round(tuples_per_fragment), tuples_per_page, hits
        )
        hit_granules = min(
            float(granules_per_fragment),
            cardenas(granules_per_fragment, hit_pages),
        )
        fact_ops = n_selected * hit_granules
        # A prefetch operation transfers the whole granule.
        fact_pages = min(
            n_selected * pages_per_fragment,
            fact_ops * params.prefetch_fact,
        )

    bitmap_fragment_pages_raw = tuples_per_fragment / 8 / params.page_size
    bitmap_fragment_pages = max(1, math.ceil(bitmap_fragment_pages_raw))
    granule = params.bitmap_granule(bitmap_fragment_pages_raw)
    ops_per_bitmap_fragment = math.ceil(bitmap_fragment_pages / granule)
    bitmaps = plan.bitmaps_per_fragment
    bitmap_ops = n_selected * bitmaps * ops_per_bitmap_fragment
    bitmap_pages = n_selected * bitmaps * bitmap_fragment_pages

    return IOCostEstimate(
        fragment_count=n_selected,
        fact_io_ops=fact_ops,
        fact_pages=fact_pages,
        bitmap_io_ops=bitmap_ops,
        bitmap_pages=bitmap_pages,
        page_size=params.page_size,
    )
