"""Analytic I/O cost model (Section 4.5; stand-in for tech report [33]).

Estimates, for a query under a fragmentation, the number of fact-table
and bitmap I/O operations, pages and bytes — the quantities Table 3
compares for 1STORE under F_opt vs F_nosupp.  The model follows the
paper's stated assumptions: uniform distribution of hits within relevant
fragments and pages, consecutive on-disk storage of each fragment, and
prefetch-granule I/O.

The exact formulas of the unavailable tech report [33] could not be
recovered; this module re-derives them from the stated assumptions using
the classical Yao/Cardenas block-hit estimate.  EXPERIMENTS.md records
where the resulting absolute values deviate from the paper's Table 3
(same orders of magnitude, identical orderings).
"""

from repro.costmodel.estimator import cardenas, distinct_blocks, yao
from repro.costmodel.iocost import IOCostEstimate, IOCostParameters, estimate_io
from repro.costmodel.report import CostReport, compare_fragmentations

__all__ = [
    "yao",
    "cardenas",
    "distinct_blocks",
    "IOCostParameters",
    "IOCostEstimate",
    "estimate_io",
    "CostReport",
    "compare_fragmentations",
]
