"""Block-hit estimators (Yao / Cardenas).

Given ``k`` hits uniformly distributed over ``n`` records packed ``m``
per block, how many distinct blocks contain at least one hit?  These
classical estimates underpin every page- and granule-count in the cost
model.
"""

from __future__ import annotations

import math


def yao(n_records: int, records_per_block: int, hits: float) -> float:
    """Yao's formula: expected distinct blocks touched by ``hits`` records.

    Exact for sampling *without* replacement.  ``hits`` may be fractional
    (expected values propagate); fractional hits interpolate linearly
    between the neighbouring integer evaluations.
    """
    if n_records <= 0 or records_per_block <= 0:
        raise ValueError("n_records and records_per_block must be positive")
    if hits < 0:
        raise ValueError("hits must be non-negative")
    hits = min(hits, float(n_records))
    blocks = math.ceil(n_records / records_per_block)
    if hits == 0:
        return 0.0
    low = math.floor(hits)
    high = math.ceil(hits)
    if low == high:
        return _yao_int(n_records, records_per_block, blocks, int(hits))
    frac = hits - low
    return (1 - frac) * _yao_int(
        n_records, records_per_block, blocks, low
    ) + frac * _yao_int(n_records, records_per_block, blocks, high)


def _yao_int(n: int, m: int, blocks: int, k: int) -> float:
    if k == 0:
        return 0.0
    if k >= n - m + 1:
        return float(blocks)
    # P(one particular block has no hit) = prod_{i=0..k-1} (n - m - i) / (n - i)
    # computed in log space for numerical stability at warehouse scale.
    log_p = 0.0
    for i in range(k):
        log_p += math.log(n - m - i) - math.log(n - i)
        if log_p < -60:  # p is numerically zero: every block is hit
            return float(blocks)
    return blocks * (1.0 - math.exp(log_p))


def cardenas(blocks: float, hits: float) -> float:
    """Cardenas' approximation: distinct blocks hit by ``hits`` draws.

    Assumes sampling *with* replacement over ``blocks`` blocks:
    ``blocks * (1 - (1 - 1/blocks)^hits)``.  Cheaper than Yao and
    accurate when hits << records; used for granule-level estimates
    where the "records" are already expected page counts.
    """
    if blocks <= 0:
        raise ValueError("blocks must be positive")
    if hits < 0:
        raise ValueError("hits must be non-negative")
    if hits == 0:
        return 0.0
    if blocks == 1:
        return 1.0
    return blocks * (1.0 - math.exp(hits * math.log1p(-1.0 / blocks)))


def distinct_blocks(
    n_records: int, records_per_block: int, hits: float, exact_limit: int = 10_000
) -> float:
    """Pick Yao (exact) or Cardenas (approximate) by problem size.

    Yao's product has ``k`` factors; beyond ``exact_limit`` hits the
    approximation is indistinguishable at our scales and much faster.
    """
    if hits <= exact_limit:
        return yao(n_records, records_per_block, hits)
    blocks = math.ceil(n_records / records_per_block)
    return min(float(blocks), cardenas(blocks, hits))
