"""Tabular cost comparisons across fragmentations (Table 3 style).

The paper's guideline workflow (Section 4.7) ranks candidate
fragmentations by the analytic I/O work of a query mix; this module
produces those rows both for reports and for the advisor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bitmap.catalog import IndexCatalog
from repro.costmodel.iocost import IOCostEstimate, IOCostParameters, estimate_io
from repro.mdhf.classify import IOClass
from repro.mdhf.query import StarQuery
from repro.mdhf.routing import plan_query
from repro.mdhf.spec import Fragmentation
from repro.schema.fact import StarSchema


@dataclass(frozen=True)
class CostReport:
    """One (query, fragmentation) cost row."""

    query: StarQuery
    fragmentation: Fragmentation
    io_class: IOClass
    estimate: IOCostEstimate

    def row(self) -> dict[str, object]:
        """A flat dict suitable for printing or CSV export."""
        return {
            "query": self.query.name or str(self.query),
            "fragmentation": str(self.fragmentation),
            "io_class": self.io_class.value,
            "fragments": self.estimate.fragment_count,
            "fact_io_ops": round(self.estimate.fact_io_ops),
            "fact_pages": round(self.estimate.fact_pages),
            "bitmap_io_ops": round(self.estimate.bitmap_io_ops),
            "bitmap_pages": round(self.estimate.bitmap_pages),
            "total_mib": round(self.estimate.total_mib, 1),
        }


def compare_fragmentations(
    query: StarQuery,
    fragmentations: list[Fragmentation],
    schema: StarSchema,
    catalog: IndexCatalog | None = None,
    params: IOCostParameters | None = None,
) -> list[CostReport]:
    """Cost one query under several fragmentations (Table 3)."""
    if catalog is None:
        catalog = IndexCatalog(schema)
    reports = []
    for fragmentation in fragmentations:
        plan = plan_query(query, fragmentation, schema, catalog)
        estimate = estimate_io(plan, schema, params)
        reports.append(
            CostReport(
                query=query,
                fragmentation=fragmentation,
                io_class=plan.io_class,
                estimate=estimate,
            )
        )
    return reports


def format_table(reports: list[CostReport]) -> str:
    """Render cost rows as an aligned text table."""
    if not reports:
        return "(no rows)"
    rows = [r.row() for r in reports]
    headers = list(rows[0])
    widths = {
        h: max(len(h), *(len(str(row[h])) for row in rows)) for h in headers
    }
    lines = [
        "  ".join(h.ljust(widths[h]) for h in headers),
        "  ".join("-" * widths[h] for h in headers),
    ]
    for row in rows:
        lines.append("  ".join(str(row[h]).ljust(widths[h]) for h in headers))
    return "\n".join(lines)
