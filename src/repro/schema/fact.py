"""Fact-table descriptor and the star schema container.

The fact table is described analytically: its cardinality follows from
the dimension leaf cardinalities and a *density* factor (the fraction of
possible foreign-key combinations that actually occur), exactly as APB-1
defines it (Section 3.1: density 25% -> 1,866,240,000 rows for the
15-channel configuration).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping, Sequence

from repro.schema.dimension import AttributeRef, Dimension


@dataclass(frozen=True)
class FactTable:
    """Analytic descriptor of the fact table.

    Attributes:
        name: Table name (``"sales"`` for APB-1).
        measures: Names of the measuring attributes (UnitsSold, ...).
        density: Fraction of possible dimension-value combinations present.
        tuple_size_bytes: Physical row size; the paper uses 20 B.
    """

    name: str
    measures: tuple[str, ...]
    density: float
    tuple_size_bytes: int = 20

    def __post_init__(self) -> None:
        if not 0.0 < self.density <= 1.0:
            raise ValueError(f"density must be in (0, 1], got {self.density}")
        if self.tuple_size_bytes <= 0:
            raise ValueError("tuple_size_bytes must be positive")


class StarSchema:
    """A star schema: one fact table plus its dimensions.

    This is the root object handed to every other subsystem (bitmap
    sizing, MDHF, cost model, simulator).
    """

    def __init__(self, fact: FactTable, dimensions: Sequence[Dimension]):
        if not dimensions:
            raise ValueError("a star schema needs at least one dimension")
        names = [d.name for d in dimensions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate dimension names: {names}")
        self.fact = fact
        self.dimensions = tuple(dimensions)
        self._by_name: Mapping[str, Dimension] = {d.name: d for d in dimensions}

    def dimension(self, name: str) -> Dimension:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no dimension {name!r}; available: {sorted(self._by_name)}"
            ) from None

    def dimension_names(self) -> tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    def resolve(self, attr: AttributeRef | str) -> AttributeRef:
        """Validate an attribute reference against this schema."""
        if isinstance(attr, str):
            attr = AttributeRef.parse(attr)
        dim = self.dimension(attr.dimension)
        dim.hierarchy.level(attr.level)  # raises if unknown
        return attr

    def attribute_cardinality(self, attr: AttributeRef | str) -> int:
        attr = self.resolve(attr)
        return self.dimension(attr.dimension).level(attr.level).cardinality

    @property
    def combination_count(self) -> int:
        """Number of possible foreign-key combinations."""
        return math.prod(d.cardinality for d in self.dimensions)

    @property
    def fact_count(self) -> int:
        """Number of fact rows: density applied to the combination space."""
        return round(self.combination_count * self.fact.density)

    @property
    def fact_bytes(self) -> int:
        return self.fact_count * self.fact.tuple_size_bytes

    def fact_pages(self, page_size: int) -> int:
        """Number of pages occupied by the fact table.

        The paper packs whole tuples into pages (``floor(PgSize / 20)``
        tuples per page); partial last pages are rounded up.
        """
        per_page = self.tuples_per_page(page_size)
        return math.ceil(self.fact_count / per_page)

    def tuples_per_page(self, page_size: int) -> int:
        per_page = page_size // self.fact.tuple_size_bytes
        if per_page == 0:
            raise ValueError(
                f"page size {page_size} smaller than one fact tuple "
                f"({self.fact.tuple_size_bytes} B)"
            )
        return per_page

    def __repr__(self) -> str:
        dims = ", ".join(
            f"{d.name}({d.cardinality})" for d in self.dimensions
        )
        return (
            f"StarSchema({self.fact.name!r}, facts={self.fact_count:,}, "
            f"dims=[{dims}])"
        )


@dataclass(frozen=True)
class SchemaStatistics:
    """Summary figures for reports and sanity checks."""

    fact_count: int
    combination_count: int
    fact_bytes: int
    dimension_cardinalities: Mapping[str, int] = field(default_factory=dict)

    @classmethod
    def of(cls, schema: StarSchema) -> "SchemaStatistics":
        return cls(
            fact_count=schema.fact_count,
            combination_count=schema.combination_count,
            fact_bytes=schema.fact_bytes,
            dimension_cardinalities={
                d.name: d.cardinality for d in schema.dimensions
            },
        )
