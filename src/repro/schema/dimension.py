"""Dimensions and attribute references.

A dimension is a named hierarchy; fact rows carry a foreign key to its
leaf level.  Attributes anywhere in a hierarchy are referenced in the
paper's ``Dimension::Hierarchy-level`` notation (Section 4.1), e.g.
``product::group``; :class:`AttributeRef` is the parsed form.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.schema.hierarchy import Hierarchy, Level


@dataclass(frozen=True)
class AttributeRef:
    """A reference to one hierarchy level of one dimension."""

    dimension: str
    level: str

    @classmethod
    def parse(cls, text: str) -> "AttributeRef":
        """Parse the paper's ``dimension::level`` notation."""
        parts = text.split("::")
        if len(parts) != 2 or not parts[0] or not parts[1]:
            raise ValueError(f"expected 'dimension::level', got {text!r}")
        return cls(dimension=parts[0], level=parts[1])

    def __str__(self) -> str:
        return f"{self.dimension}::{self.level}"


class Dimension:
    """A named, hierarchically structured dimension table.

    The relational details of the (denormalised) dimension table are not
    modelled: the paper notes dimension tables occupy ~1 MB in total and
    play no role in the allocation problem (Section 4).  What matters is
    the hierarchy structure and the leaf cardinality.
    """

    def __init__(self, name: str, hierarchy: Hierarchy):
        if not name:
            raise ValueError("dimension name must be non-empty")
        self.name = name
        self.hierarchy = hierarchy

    @property
    def leaf(self) -> Level:
        return self.hierarchy.leaf

    @property
    def cardinality(self) -> int:
        """Leaf cardinality — the number of distinct foreign-key values."""
        return self.hierarchy.leaf.cardinality

    def level(self, name: str) -> Level:
        return self.hierarchy.level(name)

    def attribute(self, level_name: str) -> AttributeRef:
        """Build an :class:`AttributeRef` for a level of this dimension."""
        self.hierarchy.level(level_name)  # validates the name
        return AttributeRef(self.name, level_name)

    def __repr__(self) -> str:
        return f"Dimension({self.name!r}, {self.hierarchy!r})"
