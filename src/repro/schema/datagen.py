"""Synthetic warehouse generator for runnable, scaled-down instances.

The paper's experiments never materialise the 1.87-billion-row fact
table — the simulator works on counts.  For the functional query engine
(:mod:`repro.exec`), the examples and the property tests we *do* need
concrete rows, so this module generates them for small schemas such as
:func:`repro.schema.apb1.tiny_schema`.

APB-1 semantics are preserved: the fact table holds ``density`` of all
possible foreign-key combinations, each combination at most once, chosen
uniformly at random (deterministic under a seed).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.schema.fact import StarSchema

#: Refuse to materialise warehouses above this many rows; the analytic
#: descriptors (StarSchema) serve the large-scale paths.
MAX_MATERIALISED_ROWS = 5_000_000


@dataclass
class Warehouse:
    """A materialised star-schema instance.

    Attributes:
        schema: The analytic schema the data conforms to.
        keys: One int32 array of leaf foreign-key values per dimension,
            keyed by dimension name; all arrays share the fact row order.
        measures: One float64 array per measure, same row order.
    """

    schema: StarSchema
    keys: dict[str, np.ndarray]
    measures: dict[str, np.ndarray]

    @property
    def row_count(self) -> int:
        # repro-lint: disable=DET-ORDER -- every column has the same
        # length; any element of the dict view gives the row count.
        first = next(iter(self.keys.values()))
        return int(first.shape[0])

    def column(self, dimension: str) -> np.ndarray:
        """Leaf foreign-key column of one dimension."""
        try:
            return self.keys[dimension]
        except KeyError:
            raise KeyError(
                f"no dimension {dimension!r}; available: {sorted(self.keys)}"
            ) from None

    def level_column(self, dimension: str, level: str) -> np.ndarray:
        """Fact rows mapped to their ancestor value at ``level``.

        Uses the contiguous-children property of the hierarchies: the
        ancestor is an integer division of the leaf key.
        """
        hierarchy = self.schema.dimension(dimension).hierarchy
        width = hierarchy.leaves_per_value(level)
        return self.column(dimension) // width

    def measure(self, name: str) -> np.ndarray:
        try:
            return self.measures[name]
        except KeyError:
            raise KeyError(
                f"no measure {name!r}; available: {sorted(self.measures)}"
            ) from None


def generate_warehouse(schema: StarSchema, seed: int = 0) -> Warehouse:
    """Materialise a warehouse for ``schema``.

    Rows are a uniform, seed-deterministic sample (without replacement)
    of the foreign-key combination space, of size ``schema.fact_count``.

    Raises:
        ValueError: If the schema is too large to materialise; use the
            analytic paths (cost model / simulator) for full-scale APB-1.
    """
    n_rows = schema.fact_count
    if n_rows > MAX_MATERIALISED_ROWS:
        raise ValueError(
            f"refusing to materialise {n_rows:,} rows "
            f"(limit {MAX_MATERIALISED_ROWS:,}); use the analytic model"
        )
    rng = np.random.default_rng(seed)
    combos = schema.combination_count
    # Sample distinct linear combination indices, then decode mixed-radix.
    linear = rng.choice(combos, size=n_rows, replace=False)
    rng.shuffle(linear)  # avoid the sorted order `choice` can exhibit

    keys: dict[str, np.ndarray] = {}
    remainder = linear
    for dim in reversed(schema.dimensions):
        keys[dim.name] = (remainder % dim.cardinality).astype(np.int32)
        remainder = remainder // dim.cardinality

    measures = {
        name: np.round(rng.uniform(1.0, 1000.0, size=n_rows), 2)
        for name in schema.fact.measures
    }
    return Warehouse(schema=schema, keys=keys, measures=measures)
