"""Star-schema substrate: hierarchies, dimensions, fact tables, APB-1.

This package models the *logical* star schema of the paper (Section 3.1):
dimension tables with strict value hierarchies (every child value has
exactly one parent value) and a fact table whose rows reference the leaf
level of every dimension.

The full-scale APB-1 instance used in the paper's evaluation is built by
:func:`repro.schema.apb1.apb1_schema`; scaled-down but structurally
identical instances for runnable examples and tests come from
:func:`repro.schema.apb1.tiny_schema` and
:func:`repro.schema.datagen.generate_warehouse`.
"""

from repro.schema.hierarchy import Hierarchy, Level
from repro.schema.dimension import AttributeRef, Dimension
from repro.schema.fact import FactTable, StarSchema
from repro.schema.apb1 import apb1_schema, tiny_schema
from repro.schema.datagen import Warehouse, generate_warehouse

__all__ = [
    "Level",
    "Hierarchy",
    "Dimension",
    "AttributeRef",
    "FactTable",
    "StarSchema",
    "apb1_schema",
    "tiny_schema",
    "Warehouse",
    "generate_warehouse",
]
