"""Dimension hierarchies with uniform fan-out.

The paper's star schema (APB-1, Section 3.1) assumes strict hierarchies:
every value of a level belongs to exactly one value of the parent level,
and the benchmark fixes the number of children per parent ("#elements
within parent" in Table 1).  A level value is identified by its ordinal
index ``0 .. cardinality-1``; the children of parent value ``v`` at the
next level are the contiguous index range ``[v * fanout, (v+1) * fanout)``.

This contiguity is what makes point fragmentations on an inner level act
as *range* fragmentations on all lower levels (Section 4.1), which in turn
is what lets MDHF confine queries on lower- and higher-level attributes to
few fragments (query classes Q2/Q3, Section 4.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence


@dataclass(frozen=True)
class Level:
    """One level of a dimension hierarchy.

    Attributes:
        name: Level (attribute) name, e.g. ``"group"``.
        cardinality: Total number of distinct values at this level.
        fanout: Number of values per parent value (equals ``cardinality``
            for the root level).
    """

    name: str
    cardinality: int
    fanout: int

    def __post_init__(self) -> None:
        if self.cardinality <= 0:
            raise ValueError(f"level {self.name!r}: cardinality must be positive")
        if self.fanout <= 0:
            raise ValueError(f"level {self.name!r}: fanout must be positive")


class Hierarchy:
    """An ordered list of levels from coarsest (root) to finest (leaf).

    Built from per-level fan-outs, mirroring Table 1 of the paper::

        >>> product = Hierarchy.from_fanouts(
        ...     ["division", "line", "family", "group", "class", "code"],
        ...     [8, 3, 5, 4, 2, 15])
        >>> [lvl.cardinality for lvl in product.levels]
        [8, 24, 120, 480, 960, 14400]
    """

    def __init__(self, levels: Sequence[Level]):
        if not levels:
            raise ValueError("a hierarchy needs at least one level")
        names = [lvl.name for lvl in levels]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate level names in hierarchy: {names}")
        expected = 1
        for lvl in levels:
            expected *= lvl.fanout
            if lvl.cardinality != expected:
                raise ValueError(
                    f"level {lvl.name!r}: cardinality {lvl.cardinality} "
                    f"inconsistent with cumulative fanout {expected}"
                )
        self._levels = tuple(levels)
        self._index = {lvl.name: i for i, lvl in enumerate(levels)}

    @classmethod
    def from_fanouts(cls, names: Sequence[str], fanouts: Sequence[int]) -> "Hierarchy":
        """Build a hierarchy from level names and per-level fan-outs."""
        if len(names) != len(fanouts):
            raise ValueError("names and fanouts must have the same length")
        levels = []
        cardinality = 1
        for name, fanout in zip(names, fanouts):
            cardinality *= fanout
            levels.append(Level(name=name, cardinality=cardinality, fanout=fanout))
        return cls(levels)

    @property
    def levels(self) -> tuple[Level, ...]:
        return self._levels

    @property
    def leaf(self) -> Level:
        """The finest level; fact rows reference this one."""
        return self._levels[-1]

    @property
    def root(self) -> Level:
        return self._levels[0]

    def __len__(self) -> int:
        return len(self._levels)

    def __iter__(self) -> Iterator[Level]:
        return iter(self._levels)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def level(self, name: str) -> Level:
        """Return the level called ``name``."""
        try:
            return self._levels[self._index[name]]
        except KeyError:
            raise KeyError(
                f"no level {name!r}; available: {[l.name for l in self._levels]}"
            ) from None

    def depth(self, name: str) -> int:
        """0-based position of a level, root = 0."""
        if name not in self._index:
            raise KeyError(f"no level {name!r}")
        return self._index[name]

    def is_above(self, name: str, other: str) -> bool:
        """True if level ``name`` is strictly coarser than level ``other``."""
        return self.depth(name) < self.depth(other)

    def leaves_per_value(self, name: str) -> int:
        """Number of leaf values under one value of level ``name``."""
        return self.leaf.cardinality // self.level(name).cardinality

    def leaf_range(self, name: str, value: int) -> range:
        """The contiguous leaf-index range covered by ``value`` at ``name``."""
        self._check_value(name, value)
        width = self.leaves_per_value(name)
        return range(value * width, (value + 1) * width)

    def ancestor(self, leaf_value: int, name: str) -> int:
        """Map a leaf value to its ancestor value at level ``name``."""
        self._check_value(self.leaf.name, leaf_value)
        return leaf_value // self.leaves_per_value(name)

    def project(self, from_level: str, value: int, to_level: str) -> range:
        """Values at ``to_level`` related to ``value`` at ``from_level``.

        If ``to_level`` is coarser the result is the single ancestor value;
        if finer, the contiguous range of descendant values.
        """
        self._check_value(from_level, value)
        d_from, d_to = self.depth(from_level), self.depth(to_level)
        ratio_from = self.leaves_per_value(from_level)
        ratio_to = self.leaves_per_value(to_level)
        if d_to <= d_from:  # coarser or same: exactly one related value
            ancestor = (value * ratio_from) // ratio_to
            return range(ancestor, ancestor + 1)
        width = ratio_from // ratio_to  # descendants per value
        return range(value * width, (value + 1) * width)

    def _check_value(self, name: str, value: int) -> None:
        cardinality = self.level(name).cardinality
        if not 0 <= value < cardinality:
            raise ValueError(
                f"value {value} out of range for level {name!r} "
                f"(cardinality {cardinality})"
            )

    def __repr__(self) -> str:
        chain = " > ".join(f"{l.name}({l.cardinality})" for l in self._levels)
        return f"Hierarchy({chain})"
