"""APB-1 star schema builders (Section 3.1, Figure 1, Table 1).

The paper evaluates a 15-channel APB-1 configuration with density 25%:

* PRODUCT: division(8) > line(24) > family(120) > group(480) > class(960)
  > code(14,400); fan-outs 8, 3, 5, 4, 2, 15 (Table 1).
* CUSTOMER: retailer(144) > store(1,440); 10 stores per retailer.
* TIME: year(2) > quarter(8) > month(24).
* CHANNEL: channel(15), a single-level hierarchy.
* SALES fact table: 14,400 * 1,440 * 15 * 24 * 0.25 = 1,866,240,000 rows
  of 20 bytes each.

APB-1 scales the schema with the number of channels: codes and stores
grow proportionally (960 resp. 96 per channel).  We keep the inner
fan-outs of Table 1 fixed and scale only the leaf fan-outs, which
reproduces the published configuration exactly for ``channels=15``.
"""

from __future__ import annotations

from repro.schema.dimension import Dimension
from repro.schema.fact import FactTable, StarSchema
from repro.schema.hierarchy import Hierarchy

#: Stores per retailer in APB-1 (fixed across scale factors).
STORES_PER_RETAILER = 10
#: Product codes per channel, stores per channel (APB-1 scaling rules).
CODES_PER_CHANNEL = 960
STORES_PER_CHANNEL = 96

PRODUCT_LEVELS = ["division", "line", "family", "group", "class", "code"]
#: Fan-outs above the code level, from Table 1 of the paper.
PRODUCT_INNER_FANOUTS = [8, 3, 5, 4, 2]


def apb1_schema(
    channels: int = 15,
    months: int = 24,
    density: float = 0.25,
    tuple_size_bytes: int = 20,
) -> StarSchema:
    """Build the APB-1 star schema used throughout the paper.

    Args:
        channels: Number of distribution channels (the APB-1 scale knob).
            The paper uses 15.
        months: Length of the time frame; APB-1 fixes 24.
        density: Fraction of possible foreign-key combinations present in
            the fact table; the paper uses 0.25.
        tuple_size_bytes: Fact row size; the paper uses 20 B.

    Returns:
        A :class:`StarSchema` whose derived figures match Section 3.1 for
        the default arguments (1,866,240,000 fact rows, etc.).
    """
    if channels < 1:
        raise ValueError("channels must be >= 1")
    if months % 12 != 0:
        raise ValueError("months must cover whole years (multiples of 12)")

    codes = CODES_PER_CHANNEL * channels
    classes = 1
    for fanout in PRODUCT_INNER_FANOUTS:
        classes *= fanout
    codes_per_class, remainder = divmod(codes, classes)
    if remainder:
        raise ValueError(
            f"{channels} channels give {codes} codes, not divisible by "
            f"{classes} classes; pick a channel count divisible by 2"
        )
    product = Hierarchy.from_fanouts(
        PRODUCT_LEVELS, PRODUCT_INNER_FANOUTS + [codes_per_class]
    )

    stores = STORES_PER_CHANNEL * channels
    retailers, remainder = divmod(stores, STORES_PER_RETAILER)
    if remainder:
        raise ValueError(
            f"{stores} stores not divisible into retailers of "
            f"{STORES_PER_RETAILER} stores each"
        )
    customer = Hierarchy.from_fanouts(
        ["retailer", "store"], [retailers, STORES_PER_RETAILER]
    )

    years = months // 12
    time = Hierarchy.from_fanouts(["year", "quarter", "month"], [years, 4, 3])

    channel = Hierarchy.from_fanouts(["channel"], [channels])

    fact = FactTable(
        name="sales",
        measures=("units_sold", "dollar_sales", "cost"),
        density=density,
        tuple_size_bytes=tuple_size_bytes,
    )
    return StarSchema(
        fact,
        [
            Dimension("product", product),
            Dimension("customer", customer),
            Dimension("channel", channel),
            Dimension("time", time),
        ],
    )


def tiny_schema(density: float = 0.25, tuple_size_bytes: int = 20) -> StarSchema:
    """A structurally identical but tiny star schema for tests/examples.

    Same four dimensions and hierarchy shapes as APB-1, shrunk so that a
    warehouse can be materialised in memory: 72 products, 20 stores,
    2 channels, 12 months -> 34,560 combinations, 8,640 fact rows at the
    default density.
    """
    product = Hierarchy.from_fanouts(
        ["division", "line", "family", "group", "class", "code"],
        [2, 3, 2, 2, 1, 3],
    )
    customer = Hierarchy.from_fanouts(["retailer", "store"], [4, 5])
    time = Hierarchy.from_fanouts(["year", "quarter", "month"], [1, 4, 3])
    channel = Hierarchy.from_fanouts(["channel"], [2])
    fact = FactTable(
        name="sales",
        measures=("units_sold", "dollar_sales", "cost"),
        density=density,
        tuple_size_bytes=tuple_size_bytes,
    )
    return StarSchema(
        fact,
        [
            Dimension("product", product),
            Dimension("customer", customer),
            Dimension("channel", channel),
            Dimension("time", time),
        ],
    )
