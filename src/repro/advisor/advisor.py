"""Fragmentation recommendation from schema + query mix (Section 4.7).

The paper's guidelines, mechanised:

1. *Exclude* fragmentations breaking a threshold: (i) minimal
   bitmap-fragment size, (ii) maximum number of fragments to administer,
   (iii) maximum number of materialised bitmaps.  We add the paper's
   side condition that one- or two-dimensional fragmentations "may have
   too few fragments to even use all available disks, which is of course
   unacceptable" — a minimum fragment count.
2. *Limit dimensionality* to the dimensions the query profile references.
3. *Rank* the remaining candidates by the total (weighted) analytic I/O
   work over the query mix; favoured queries can be prioritised via
   weights.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bitmap.catalog import IndexCatalog
from repro.costmodel.iocost import IOCostParameters, estimate_io
from repro.mdhf.elimination import eliminate_bitmaps
from repro.mdhf.query import StarQuery
from repro.mdhf.routing import plan_query
from repro.mdhf.spec import Fragmentation
from repro.mdhf.thresholds import enumerate_fragmentations
from repro.schema.fact import StarSchema


@dataclass(frozen=True)
class AdvisorConfig:
    """Threshold settings for candidate filtering."""

    page_size: int = 4096
    #: Threshold (i): minimum average bitmap-fragment size in pages
    #: (the paper recommends the prefetch granule).
    min_bitmap_fragment_pages: float = 4.0
    #: Threshold (ii): maximum fragments whose metadata fits in memory.
    max_fragments: int | None = None
    #: Threshold (iii): maximum bitmaps to materialise.
    max_bitmaps: int | None = None
    #: At least one fragment per fact-table disk.
    min_fragments: int = 1
    #: Restrict candidate dimensions to those the query mix references.
    restrict_to_query_dimensions: bool = True
    io_params: IOCostParameters = field(default_factory=IOCostParameters)


@dataclass(frozen=True)
class Candidate:
    """One surviving fragmentation with its evaluation."""

    fragmentation: Fragmentation
    fragment_count: int
    bitmap_fragment_pages: float
    kept_bitmaps: int
    #: Weighted total I/O pages over the query mix.
    weighted_io_pages: float
    #: Per-query total I/O pages, in query-mix order.
    per_query_pages: tuple[float, ...]


@dataclass(frozen=True)
class AdvisorReport:
    """Ranked candidates (best first) plus filtering statistics."""

    candidates: tuple[Candidate, ...]
    options_total: int
    options_after_thresholds: int

    @property
    def best(self) -> Candidate:
        """The top-ranked candidate; raises if none survived."""
        if not self.candidates:
            raise ValueError("no fragmentation survived the thresholds")
        return self.candidates[0]


def recommend_fragmentation(
    schema: StarSchema,
    query_mix: Sequence[StarQuery | tuple[StarQuery, float]],
    config: AdvisorConfig | None = None,
    catalog: IndexCatalog | None = None,
) -> AdvisorReport:
    """Apply the Section 4.7 guidelines to a schema and query mix."""
    if not query_mix:
        raise ValueError("need at least one query in the mix")
    if config is None:
        config = AdvisorConfig()
    if catalog is None:
        catalog = IndexCatalog(schema)

    weighted: list[tuple[StarQuery, float]] = []
    for entry in query_mix:
        if isinstance(entry, tuple):
            query, weight = entry
        else:
            query, weight = entry, 1.0
        if weight < 0:
            raise ValueError("query weights must be non-negative")
        weighted.append((query, weight))

    dimensions = None
    if config.restrict_to_query_dimensions:
        referenced: set[str] = set()
        for query, _weight in weighted:
            referenced |= query.dimensions()
        dimensions = [
            d for d in schema.dimension_names() if d in referenced
        ]

    options_total = 0
    survivors = []
    for option in enumerate_fragmentations(
        schema,
        page_size=config.page_size,
        dimensions=dimensions,
    ):
        options_total += 1
        if option.bitmap_fragment_pages < config.min_bitmap_fragment_pages:
            continue
        if option.fragment_count < config.min_fragments:
            continue
        if (
            config.max_fragments is not None
            and option.fragment_count > config.max_fragments
        ):
            continue
        if config.max_bitmaps is not None:
            kept = eliminate_bitmaps(catalog, option.fragmentation).total_kept
            if kept > config.max_bitmaps:
                continue
        survivors.append(option)

    candidates = []
    for option in survivors:
        per_query = []
        total = 0.0
        for query, weight in weighted:
            plan = plan_query(query, option.fragmentation, schema, catalog)
            estimate = estimate_io(plan, schema, config.io_params)
            per_query.append(estimate.total_pages)
            total += weight * estimate.total_pages
        candidates.append(
            Candidate(
                fragmentation=option.fragmentation,
                fragment_count=option.fragment_count,
                bitmap_fragment_pages=option.bitmap_fragment_pages,
                kept_bitmaps=eliminate_bitmaps(
                    catalog, option.fragmentation
                ).total_kept,
                weighted_io_pages=total,
                per_query_pages=tuple(per_query),
            )
        )
    candidates.sort(key=lambda c: (c.weighted_io_pages, c.fragment_count))
    return AdvisorReport(
        candidates=tuple(candidates),
        options_total=options_total,
        options_after_thresholds=len(survivors),
    )
