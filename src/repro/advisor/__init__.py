"""Allocation advisor: the guideline tool of Section 4.7.

Automates the paper's data-allocation guidelines for a given star
schema and query mix: enumerate all fragmentation options, exclude
threshold breakers (minimum bitmap-fragment size, maximum fragment
count, maximum bitmaps, minimum fragments for the disk count), then rank
the survivors by the weighted analytic I/O work of the query mix.
"""

from repro.advisor.advisor import (
    AdvisorConfig,
    AdvisorReport,
    Candidate,
    recommend_fragmentation,
)

__all__ = [
    "AdvisorConfig",
    "AdvisorReport",
    "Candidate",
    "recommend_fragmentation",
]
